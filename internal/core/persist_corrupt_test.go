package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// versionedSnapshotBytes encodes a small trained snapshot in the
// current on-disk format.
func versionedSnapshotBytes(t *testing.T) []byte {
	t.Helper()
	m := newTestModel(t, func(c *Config) { c.K = 8 })
	m.TrainSteps(200)
	var buf bytes.Buffer
	if err := m.Snapshot().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadSnapshotCorruptionTable(t *testing.T) {
	good := versionedSnapshotBytes(t)

	futureVersion := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(futureVersion[8:], snapshotVersion+7)

	bitFlip := append([]byte(nil), good...)
	bitFlip[len(bitFlip)/2] ^= 0x40

	wrongMagic := append([]byte(nil), good...)
	copy(wrongMagic, "NOTASNAP")

	hugeLength := append([]byte(nil), good...)
	binary.BigEndian.PutUint64(hugeLength[12:], maxSnapshotPayload+1)

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrSnapshotCorrupt},
		{"truncated mid-magic", good[:4], ErrSnapshotCorrupt},
		{"truncated mid-header", good[:headerLen-3], ErrSnapshotCorrupt},
		{"truncated mid-payload", good[:headerLen+10], ErrSnapshotCorrupt},
		{"truncated near end", good[:len(good)-5], ErrSnapshotCorrupt},
		{"bit flip in payload", bitFlip, ErrSnapshotCorrupt},
		{"wrong magic", wrongMagic, ErrSnapshotCorrupt},
		{"garbage", []byte("these are not the bytes you are looking for"), ErrSnapshotCorrupt},
		{"future version", futureVersion, ErrSnapshotVersion},
		{"absurd payload length", hugeLength, ErrSnapshotCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadSnapshot(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v does not wrap %v", err, tc.want)
			}
			if err.Error() == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

func TestReadSnapshotAcceptsLegacyBareGob(t *testing.T) {
	m := newTestModel(t, func(c *Config) { c.K = 8 })
	m.TrainSteps(300)
	snap := m.Snapshot()

	// A pre-versioning file is a bare gob stream of the Snapshot struct.
	var legacy bytes.Buffer
	if err := gob.NewEncoder(&legacy).Encode(snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&legacy)
	if err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
	if got.Steps != 300 || got.Cfg.K != snap.Cfg.K {
		t.Fatalf("legacy metadata mismatch: steps=%d K=%d", got.Steps, got.Cfg.K)
	}
	for i := range snap.Users.Data {
		if got.Users.Data[i] != snap.Users.Data[i] {
			t.Fatal("legacy embeddings corrupted")
		}
	}

	// And the file-based path too.
	path := filepath.Join(t.TempDir(), "legacy.gob")
	if err := os.WriteFile(path, legacy.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// legacy.Bytes() is drained by ReadSnapshot above; re-encode.
	var again bytes.Buffer
	if err := gob.NewEncoder(&again).Encode(snap); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, again.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshotFile(path); err != nil {
		t.Fatalf("legacy file rejected: %v", err)
	}
}

// failAfterWriter injects a short write: it forwards n bytes, then
// fails — the moral equivalent of a crash mid-SaveFile.
type failAfterWriter struct {
	w io.Writer
	n int
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, fmt.Errorf("injected disk-full")
	}
	if len(p) > f.n {
		n, _ := f.w.Write(p[:f.n])
		f.n = 0
		return n, fmt.Errorf("injected disk-full")
	}
	f.n -= len(p)
	return f.w.Write(p)
}

func TestSaveFileShortWriteLeavesOldSnapshotIntact(t *testing.T) {
	m := newTestModel(t, func(c *Config) { c.K = 8 })
	m.TrainSteps(100)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")

	// A good snapshot is already on disk.
	if err := m.Snapshot().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	want, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// The next save dies mid-write at several cut points.
	m.TrainSteps(100)
	for _, cut := range []int{0, 3, headerLen, headerLen + 1000} {
		encodeWriter = func(w io.Writer) io.Writer { return &failAfterWriter{w: w, n: cut} }
		err := m.Snapshot().SaveFile(path)
		encodeWriter = func(w io.Writer) io.Writer { return w }
		if err == nil {
			t.Fatalf("cut=%d: injected write failure not surfaced", cut)
		}
		got, err := LoadSnapshotFile(path)
		if err != nil {
			t.Fatalf("cut=%d: pre-existing snapshot destroyed: %v", cut, err)
		}
		if got.Steps != want.Steps {
			t.Fatalf("cut=%d: pre-existing snapshot replaced (steps %d, want %d)", cut, got.Steps, want.Steps)
		}
		assertNoTempFiles(t, dir)
	}
}

func TestSaveFileRenameFailureLeavesOldSnapshotIntact(t *testing.T) {
	m := newTestModel(t, func(c *Config) { c.K = 8 })
	m.TrainSteps(100)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	if err := m.Snapshot().SaveFile(path); err != nil {
		t.Fatal(err)
	}

	m.TrainSteps(100)
	renameFile = func(oldpath, newpath string) error { return fmt.Errorf("injected rename failure") }
	err := m.Snapshot().SaveFile(path)
	renameFile = os.Rename
	if err == nil {
		t.Fatal("injected rename failure not surfaced")
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatalf("pre-existing snapshot destroyed: %v", err)
	}
	if got.Steps != 100 {
		t.Fatalf("pre-existing snapshot replaced (steps %d, want 100)", got.Steps)
	}
	assertNoTempFiles(t, dir)
}

func TestSaveFileFirstWriteFailureLeavesNothing(t *testing.T) {
	m := newTestModel(t, func(c *Config) { c.K = 8 })
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")

	encodeWriter = func(w io.Writer) io.Writer { return &failAfterWriter{w: w, n: 7} }
	err := m.Snapshot().SaveFile(path)
	encodeWriter = func(w io.Writer) io.Writer { return w }
	if err == nil {
		t.Fatal("injected write failure not surfaced")
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("partial file left at target path: %v", statErr)
	}
	assertNoTempFiles(t, dir)
}

// assertNoTempFiles verifies a failed SaveFile cleaned up its temp file.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "model.gob" && e.Name() != "legacy.gob" {
			t.Fatalf("leftover file after failed save: %s", e.Name())
		}
	}
}

func TestSaveFileAtomicReplaceUnderReload(t *testing.T) {
	// The reload contract: whatever instant a reader opens the path, it
	// sees a complete snapshot — either the old or the new one.
	m := newTestModel(t, func(c *Config) { c.K = 8 })
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	if err := m.Snapshot().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			m.TrainSteps(50)
			if err := m.Snapshot().SaveFile(path); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		if _, err := LoadSnapshotFile(path); err != nil {
			t.Fatalf("reader observed a partial snapshot: %v", err)
		}
	}
}
