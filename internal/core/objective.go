package core

import (
	"fmt"
	"math"

	"ebsn/internal/graph"
	"ebsn/internal/rng"
	"ebsn/internal/vecmath"
)

// ObjectiveEstimate is a Monte-Carlo estimate of the negative-sampling
// objective (Eqn. 4), broken out per relation so training dashboards can
// see which graph is lagging.
type ObjectiveEstimate struct {
	// Total is the overall estimate, weighted like training samples
	// (edge-count-proportional for GraphProportional configs).
	Total float64
	// PerRelation maps graph name to its mean per-edge loss.
	PerRelation map[string]float64
	// Samples is the number of positive edges drawn.
	Samples int
}

// EstimateObjective samples positive edges (with the training
// distribution) plus M degree-sampled negatives per side and averages
//
//	−log σ(v_i·v_j) − Σ_k log σ(−v·v_k)
//
// the quantity each gradient step descends. It is an unbiased estimate up
// to the sampler difference (degree-based negatives regardless of
// Cfg.Sampler, so adaptive runs are measured against a fixed yardstick).
func (m *Model) EstimateObjective(samples int, seed uint64) (ObjectiveEstimate, error) {
	if samples <= 0 {
		return ObjectiveEstimate{}, fmt.Errorf("core: samples must be positive")
	}
	src := rng.New(seed)
	est := ObjectiveEstimate{PerRelation: make(map[string]float64, len(m.Relations))}
	counts := make(map[string]int, len(m.Relations))
	mNeg := m.Cfg.NegativeSamples

	for s := 0; s < samples; s++ {
		rel := &m.Relations[m.graphPick.Sample(src)]
		e := rel.G.SampleEdge(src)
		vi := rel.A.Row(e.A)
		vj := rel.B.Row(e.B)
		loss := -logSigmoid(float64(vecmath.Dot(vi, vj)))
		for t := 0; t < mNeg; t++ {
			k := rel.G.SampleNoise(graph.SideB, src)
			if k == e.B {
				continue
			}
			loss += -logSigmoid(-float64(vecmath.Dot(vi, rel.B.Row(k))))
		}
		if m.Cfg.Bidirectional {
			for t := 0; t < mNeg; t++ {
				k := rel.G.SampleNoise(graph.SideA, src)
				if k == e.A {
					continue
				}
				loss += -logSigmoid(-float64(vecmath.Dot(rel.A.Row(k), vj)))
			}
		}
		est.Total += loss
		est.PerRelation[rel.G.Name()] += loss
		counts[rel.G.Name()]++
	}
	est.Total /= float64(samples)
	est.Samples = samples
	for name, sum := range est.PerRelation {
		est.PerRelation[name] = sum / float64(counts[name])
	}
	return est, nil
}

// logSigmoid computes log σ(x) stably for large |x|.
func logSigmoid(x float64) float64 {
	if x >= 0 {
		return -math.Log1p(math.Exp(-x))
	}
	return x - math.Log1p(math.Exp(x))
}
