package core

import (
	"math"
	"testing"
	"time"

	"ebsn/internal/ebsnet"
	"ebsn/internal/geo"
	"ebsn/internal/graph"
	"ebsn/internal/rng"
	"ebsn/internal/text"
	"ebsn/internal/vecmath"
)

// miniRelation builds a 2x2 bipartite graph with the single edge (0,0)
// and a model-compatible relation pair for white-box update tests.
func miniRelation(k int) (Relation, *Matrix, *Matrix) {
	b := graph.NewBuilder("mini", 2, 2)
	b.AddEdge(0, 0, 1)
	g := b.Build()
	a := NewMatrix(2, k)
	bm := NewMatrix(2, k)
	return Relation{G: g, A: a, B: bm}, a, bm
}

// TestStepPositiveTermMatchesEqn5 verifies the closed-form positive-edge
// update: with zero negatives, one step must produce exactly
//
//	v_i += α(1−σ(v_i·v_j))·v_j,  v_j += α(1−σ(v_i·v_j))·v_i.
func TestStepPositiveTermMatchesEqn5(t *testing.T) {
	rel, A, B := miniRelation(4)
	vi := A.Row(0)
	vj := B.Row(0)
	copy(vi, []float32{0.5, -0.2, 0.1, 0.3})
	copy(vj, []float32{-0.1, 0.4, 0.2, -0.3})
	wantI := append([]float32(nil), vi...)
	wantJ := append([]float32(nil), vj...)
	alpha := float32(0.05)
	g := alpha * (1 - vecmath.FastSigmoid(vecmath.Dot(wantI, wantJ)))
	for f := range wantI {
		wantI[f] += g * wantJ[f]
		wantJ[f] += g * vi[f]
	}

	m := &Model{Cfg: Config{K: 4, LearningRate: alpha, NegativeSamples: 0, Bidirectional: true}}
	m.Relations = []Relation{rel}
	errI := make([]float32, 4)
	errJ := make([]float32, 4)
	m.step(&m.Relations[0], rng.New(1), alpha, errI, errJ, &sampleScratch{})

	for f := 0; f < 4; f++ {
		if math.Abs(float64(vi[f]-wantI[f])) > 1e-6 {
			t.Errorf("vi[%d] = %v, want %v", f, vi[f], wantI[f])
		}
		if math.Abs(float64(vj[f]-wantJ[f])) > 1e-6 {
			t.Errorf("vj[%d] = %v, want %v", f, vj[f], wantJ[f])
		}
	}
}

// TestStepNegativeTermDirection verifies that a sampled negative node is
// pushed away from the context: with one B-side noise node (forced to be
// node 1 — node 0 is the positive and gets skipped), σ(v_i·v_k) > 0 means
// v_k moves against v_i and v_i against v_k.
func TestStepNegativeTermDirection(t *testing.T) {
	rel, A, B := miniRelation(2)
	vi := A.Row(0)
	copy(vi, []float32{1, 0})
	copy(B.Row(0), []float32{0, 1})
	vk := B.Row(1)
	copy(vk, []float32{1, 0}) // aligned with vi: a hard negative

	m := &Model{Cfg: Config{
		K: 2, LearningRate: 0.1, NegativeSamples: 1,
		Sampler: SamplerUniform, Bidirectional: false,
	}}
	m.Relations = []Relation{rel}
	errI := make([]float32, 2)
	errJ := make([]float32, 2)

	dotBefore := vecmath.Dot(vi, vk)
	// Run several steps; uniform noise hits node 1 half the time (node 0
	// draws are skipped as the positive endpoint), so the cumulative
	// effect must be clearly repulsive.
	src := rng.New(7)
	for i := 0; i < 50; i++ {
		m.step(&m.Relations[0], src, 0.1, errI, errJ, &sampleScratch{})
	}
	if after := vecmath.Dot(A.Row(0), B.Row(1)); after >= dotBefore {
		t.Errorf("negative pair similarity rose: %v -> %v", dotBefore, after)
	}
	// The positive pair must meanwhile become more similar.
	if vecmath.Dot(A.Row(0), B.Row(0)) <= 0 {
		t.Error("positive pair similarity did not grow")
	}
}

// TestLearningRateDecaySchedule verifies the linear decay: with
// TotalSteps set, later updates must be smaller than earlier ones for an
// identical configuration.
func TestLearningRateDecaySchedule(t *testing.T) {
	build := func() *Model {
		m := newTestModel(t, func(c *Config) {
			c.TotalSteps = 100_000
			c.Threads = 1
		})
		return m
	}
	early := build()
	before := append([]float32(nil), early.Users.Data[:200]...)
	early.TrainSteps(1000)
	var earlyDelta float64
	for i, v := range early.Users.Data[:200] {
		earlyDelta += math.Abs(float64(v - before[i]))
	}

	late := build()
	late.TrainSteps(99_000) // push to the end of the schedule
	before = append(before[:0], late.Users.Data[:200]...)
	late.TrainSteps(1000)
	var lateDelta float64
	for i, v := range late.Users.Data[:200] {
		lateDelta += math.Abs(float64(v - before[i]))
	}
	// The last 1000 steps run at ~1% of the initial rate; allow headroom
	// for vector-norm growth during training.
	if lateDelta > earlyDelta {
		t.Errorf("late-schedule updates (%v) not smaller than early ones (%v)", lateDelta, earlyDelta)
	}
}

// TestModelOnSparseGraphs exercises degenerate inputs: a dataset whose
// user-user graph is empty must still train (the empty graph simply
// receives no samples).
func TestModelOnEmptySocialGraph(t *testing.T) {
	d := &ebsnet.Dataset{
		Name:     "nosocial",
		NumUsers: 6,
		Venues:   []geo.Point{{Lat: 39.9, Lng: 116.4}},
		Events:   make([]ebsnet.Event, 4),
	}
	for i := range d.Events {
		d.Events[i] = ebsnet.Event{Venue: 0, Start: fixtureTime(i), Words: []string{"w1", "w2"}}
	}
	for u := int32(0); u < 6; u++ {
		for x := int32(0); x < 3; x++ {
			d.Attendance = append(d.Attendance, [2]int32{u, x})
		}
	}
	if err := d.Finalize(); err != nil {
		t.Fatal(err)
	}
	s, err := ebsnet.ChronologicalSplit(d, ebsnet.DefaultSplitConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, err := ebsnet.BuildGraphs(d, s, ebsnet.GraphsConfig{
		DBSCAN:        geo.DBSCANConfig{EpsKm: 1, MinPts: 1},
		NoiseAttachKm: 5,
		Vocab:         text.VocabConfig{MinDocFreq: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.K = 4
	m, err := NewModel(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.TrainSteps(2000)
	if m.Steps() != 2000 {
		t.Fatal("training on empty social graph failed")
	}
}

func fixtureTime(i int) time.Time {
	return time.Date(2012, 3, 1, 19, 0, 0, 0, time.UTC).AddDate(0, 0, i)
}
