package core

import (
	"errors"
	"testing"
)

func TestTrainUntilConvergedStopsOnPlateau(t *testing.T) {
	m := newTestModel(t, nil)
	// A metric that improves three times then flatlines.
	calls := 0
	metric := func(*Model) (float64, error) {
		calls++
		if calls <= 3 {
			return float64(calls), nil
		}
		return 3, nil
	}
	trace, err := m.TrainUntilConverged(ConvergenceConfig{CheckEvery: 500, MaxSteps: 500 * 50, Patience: 2}, metric)
	if err != nil {
		t.Fatal(err)
	}
	// 3 improving checks + 2 patience checks = 5 total.
	if len(trace) != 5 {
		t.Fatalf("trace length %d, want 5", len(trace))
	}
	if m.Steps() != 2500 {
		t.Errorf("model trained %d steps, want 2500", m.Steps())
	}
	for i, tr := range trace {
		if tr.Steps != int64(500*(i+1)) {
			t.Errorf("trace[%d].Steps = %d", i, tr.Steps)
		}
	}
}

func TestTrainUntilConvergedRespectsMaxSteps(t *testing.T) {
	m := newTestModel(t, nil)
	// Always-improving metric: only MaxSteps stops it.
	v := 0.0
	metric := func(*Model) (float64, error) { v++; return v, nil }
	trace, err := m.TrainUntilConverged(ConvergenceConfig{CheckEvery: 400, MaxSteps: 1000, Patience: 3}, metric)
	if err != nil {
		t.Fatal(err)
	}
	if m.Steps() != 1000 {
		t.Errorf("trained %d steps, want exactly MaxSteps=1000", m.Steps())
	}
	if last := trace[len(trace)-1]; last.Steps != 1000 {
		t.Errorf("final checkpoint at %d", last.Steps)
	}
}

func TestTrainUntilConvergedMinDelta(t *testing.T) {
	m := newTestModel(t, nil)
	// Improvements below MinDelta count as plateau.
	v := 1.0
	metric := func(*Model) (float64, error) { v += 1e-6; return v, nil }
	trace, err := m.TrainUntilConverged(ConvergenceConfig{CheckEvery: 300, MaxSteps: 30000, Patience: 2, MinDelta: 0.01}, metric)
	if err != nil {
		t.Fatal(err)
	}
	// First check sets best; two more non-improving checks exhaust patience.
	if len(trace) != 3 {
		t.Fatalf("trace length %d, want 3", len(trace))
	}
}

func TestTrainUntilConvergedPropagatesMetricError(t *testing.T) {
	m := newTestModel(t, nil)
	boom := errors.New("metric broke")
	_, err := m.TrainUntilConverged(ConvergenceConfig{CheckEvery: 100}, func(*Model) (float64, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestTrainUntilConvergedValidation(t *testing.T) {
	m := newTestModel(t, nil)
	if _, err := m.TrainUntilConverged(ConvergenceConfig{}, func(*Model) (float64, error) { return 0, nil }); err == nil {
		t.Error("CheckEvery=0 accepted")
	}
	if _, err := m.TrainUntilConverged(ConvergenceConfig{CheckEvery: 100, MaxSteps: 50}, func(*Model) (float64, error) { return 0, nil }); err == nil {
		t.Error("MaxSteps < CheckEvery accepted")
	}
	if _, err := m.TrainUntilConverged(ConvergenceConfig{CheckEvery: 100}, nil); err == nil {
		t.Error("nil metric accepted")
	}
}

func TestTrainUntilConvergedRealMetric(t *testing.T) {
	// End to end with a real (cheap) metric: margin of positive edges
	// over shifted ones. It must improve from the untrained state.
	g := testGraphs(t)
	m := newTestModel(t, nil)
	metric := func(m *Model) (float64, error) {
		var pos, rnd float64
		for i := 0; i < g.UserEvent.NumEdges(); i += 5 {
			e := g.UserEvent.Edge(i)
			pos += float64(m.ScoreUserEvent(e.A, e.B))
			rnd += float64(m.ScoreUserEvent(e.A, int32((int(e.B)+11)%m.Events.N)))
		}
		return pos - rnd, nil
	}
	before, _ := metric(m)
	trace, err := m.TrainUntilConverged(ConvergenceConfig{CheckEvery: 20000, MaxSteps: 200000, Patience: 2, MinDelta: 0.5}, metric)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	best := trace[0].Metric
	for _, tr := range trace {
		if tr.Metric > best {
			best = tr.Metric
		}
	}
	if best <= before {
		t.Errorf("metric did not improve: before %v, best %v", before, best)
	}
}
