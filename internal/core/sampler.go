package core

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"ebsn/internal/rng"
	"ebsn/internal/vecmath"
)

// dimRanking is the adaptive sampler's per-matrix state (Algorithm 1): for
// each latent dimension f, the node IDs sorted by their value on f in
// descending order, plus the per-dimension standard deviation σ_f used by
// the dimension-sampling distribution p(f|v_c) ∝ v_{c,f}·σ_f.
//
// Rankings are snapshots: workers read an immutable snapshot through an
// atomic pointer while one worker refreshes it every |V|·log|V| noise
// draws, giving the amortized O(K) cost the paper derives. A matrix shared
// by several relations (the event matrix serves four graphs) shares one
// dimRanking, so the refresh work is amortized across all of them.
type dimRanking struct {
	mat  *Matrix
	geom *rng.Geometric

	snap           atomic.Pointer[rankSnapshot]
	draws          atomic.Int64
	nextRecompute  atomic.Int64
	recomputeEvery int64
	mu             sync.Mutex
}

type rankSnapshot struct {
	// rank[f] lists node IDs in descending order of value on dimension f.
	// When the context coordinate is negative the most adversarial nodes
	// are the most negative ones, so the list is also read back-to-front.
	rank [][]int32
	// sigma[f] is the standard deviation of dimension f across nodes.
	sigma []float32
}

func newDimRanking(mat *Matrix, lambda float64) *dimRanking {
	n := mat.N
	every := int64(float64(n) * math.Max(1, math.Log2(float64(n))))
	// Probabilistic draw counting advances in drawBatch jumps; a cadence
	// shorter than a few batches would fire almost immediately.
	if every < 4*drawBatch {
		every = 4 * drawBatch
	}
	r := &dimRanking{
		mat:            mat,
		geom:           rng.NewGeometric(lambda, n),
		recomputeEvery: every,
	}
	r.nextRecompute.Store(every)
	r.recompute()
	return r
}

// recompute rebuilds the K ranking lists and σ vector. O(K·|V|·log|V|).
func (r *dimRanking) recompute() {
	n, k := r.mat.N, r.mat.K
	mean := make([]float32, k)
	variance := make([]float32, k)
	vecmath.ColumnMeanVar(r.mat.Data, n, k, mean, variance)
	snap := &rankSnapshot{
		rank:  make([][]int32, k),
		sigma: make([]float32, k),
	}
	for f := 0; f < k; f++ {
		snap.sigma[f] = float32(math.Sqrt(float64(variance[f])))
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(i)
		}
		col := f
		data := r.mat.Data
		sort.SliceStable(ids, func(a, b int) bool {
			return data[int(ids[a])*k+col] > data[int(ids[b])*k+col]
		})
		snap.rank[f] = ids
	}
	r.snap.Store(snap)
}

// drawBatch is the probabilistic counting granularity: instead of every
// noise draw touching the shared atomic counter — which serializes
// Hogwild workers on one contended cache line and was measured to cap the
// thread speedup below 1.6× — each draw increments with probability
// 1/drawBatch by drawBatch. The expected count is exact and the cadence
// error is far below the n·log n recompute interval.
const drawBatch = 64

// maybeRecompute refreshes the snapshot when enough draws have
// accumulated. Only one goroutine recomputes; others keep using the stale
// snapshot, which is exactly the staleness the paper's amortization
// argument allows.
func (r *dimRanking) maybeRecompute(src *rng.Source) {
	if src.Uint64()%drawBatch != 0 {
		return
	}
	n := r.draws.Add(drawBatch)
	if n < r.nextRecompute.Load() {
		return
	}
	if !r.mu.TryLock() {
		return
	}
	defer r.mu.Unlock()
	if n < r.nextRecompute.Load() {
		return // another worker already refreshed
	}
	r.recompute()
	r.nextRecompute.Store(n + r.recomputeEvery)
}

// sample draws one noise node for the given context vector: a Geometric
// rank s and a dimension f ~ p(f|ctx) ∝ |ctx_f|·σ_f, returning the node at
// position s of dimension f's ranking — read from the top when ctx_f is
// positive and from the bottom when it is negative, since the largest
// products ctx_f·v_{k,f} (the most adversarial nodes, per Eqn. 6's intent)
// then sit at opposite ends. Returns -1 when every |ctx_f|·σ_f is zero
// (caller falls back to the degree sampler).
func (r *dimRanking) sample(ctx []float32, src *rng.Source) int32 {
	r.maybeRecompute(src)
	snap := r.snap.Load()

	var total float64
	for f, c := range ctx {
		if c != 0 && snap.sigma[f] > 0 {
			total += abs64(c) * float64(snap.sigma[f])
		}
	}
	if total <= 0 {
		return -1
	}
	u := src.Float64() * total
	var cum float64
	dim := len(ctx) - 1
	for f, c := range ctx {
		if c != 0 && snap.sigma[f] > 0 {
			cum += abs64(c) * float64(snap.sigma[f])
			if u < cum {
				dim = f
				break
			}
		}
	}
	s := r.geom.Sample(src)
	list := snap.rank[dim]
	if ctx[dim] < 0 {
		return list[len(list)-1-s]
	}
	return list[s]
}

func abs64(x float32) float64 {
	if x < 0 {
		return float64(-x)
	}
	return float64(x)
}

// sampleScratch holds the exact adaptive sampler's per-draw ranking
// buffers. The sampler re-ranks every node on every draw, and
// allocating the score and id arrays each time made the (ablation-only)
// exact mode an order of magnitude slower than the ranking itself
// warrants — so each training worker owns one scratch and threads it
// through step → noiseNode → exactAdaptiveSample.
type sampleScratch struct {
	scores []float64
	ids    []int32
}

// grow sizes the buffers for n nodes, reusing capacity across draws.
func (ss *sampleScratch) grow(n int) ([]float64, []int32) {
	if cap(ss.scores) < n {
		ss.scores = make([]float64, n)
		ss.ids = make([]int32, n)
	}
	return ss.scores[:n], ss.ids[:n]
}

// exactAdaptiveSample implements the exact form of Eqn. 6 for the
// ablation: rank every node of mat by its similarity σ(ctx·v) to the
// context and return the node at a Geometric-sampled rank. O(|V|·K +
// |V|·log|V|) per draw; ss provides the ranking buffers.
func exactAdaptiveSample(ctx []float32, mat *Matrix, geom *rng.Geometric, src *rng.Source, ss *sampleScratch) int32 {
	n := mat.N
	scores, ids := ss.grow(n)
	for i := 0; i < n; i++ {
		scores[i] = float64(vecmath.Dot(ctx, mat.Row(int32(i))))
	}
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.SliceStable(ids, func(a, b int) bool { return scores[ids[a]] > scores[ids[b]] })
	return ids[geom.Sample(src)]
}
