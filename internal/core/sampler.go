package core

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ebsn/internal/isort"
	"ebsn/internal/par"
	"ebsn/internal/rng"
	"ebsn/internal/vecmath"
)

// dimRanking is the adaptive sampler's per-matrix state (Algorithm 1): for
// each latent dimension f, the node IDs sorted by their value on f in
// descending order, plus the per-dimension standard deviation σ_f used by
// the dimension-sampling distribution p(f|v_c) ∝ v_{c,f}·σ_f.
//
// Rankings are snapshots: workers read an immutable snapshot through an
// atomic pointer while one worker refreshes it every |V|·log|V| noise
// draws, giving the amortized O(K) cost the paper derives. A matrix shared
// by several relations (the event matrix serves four graphs) shares one
// dimRanking, so the refresh work is amortized across all of them.
type dimRanking struct {
	mat   *Matrix
	geom  *rng.Geometric
	stats *trainCounters // model telemetry sink for rebuild count/latency

	snap           atomic.Pointer[rankSnapshot]
	draws          atomic.Int64
	nextRecompute  atomic.Int64
	recomputeEvery int64
	mu             sync.Mutex

	// Double-buffered snapshots plus the column-stat scratch, all guarded
	// by mu (recompute only runs under it). Each refresh rebuilds the
	// buffer readers are NOT currently handed out, then publishes it —
	// so the K id slices and σ vector are allocated twice total instead
	// of once per refresh. A reader still holding a pointer from two
	// refreshes ago can observe the rebuild mid-sort; that degrades one
	// noise draw to an arbitrary (but in-range) node, which is the same
	// Hogwild-grade staleness the snapshot scheme already accepts. Race
	// builds serialize steps via hogwildMu, so the detector never sees
	// that window.
	bufs     [2]*rankSnapshot
	cur      int
	mean     []float32
	variance []float32
}

type rankSnapshot struct {
	// rank[f] lists node IDs in descending order of value on dimension f.
	// When the context coordinate is negative the most adversarial nodes
	// are the most negative ones, so the list is also read back-to-front.
	rank [][]int32
	// sigma[f] is the standard deviation of dimension f across nodes.
	sigma []float32
}

func newDimRanking(mat *Matrix, lambda float64, stats *trainCounters) *dimRanking {
	n := mat.N
	every := int64(float64(n) * math.Max(1, math.Log2(float64(n))))
	// Probabilistic draw counting advances in drawBatch jumps; a cadence
	// shorter than a few batches would fire almost immediately.
	if every < 4*drawBatch {
		every = 4 * drawBatch
	}
	r := &dimRanking{
		mat:            mat,
		geom:           rng.NewGeometric(lambda, n),
		stats:          stats,
		recomputeEvery: every,
	}
	r.nextRecompute.Store(every)
	r.recompute()
	return r
}

// colScratchPool recycles the contiguous column buffers recompute
// gathers each strided matrix column into before sorting. Pooled rather
// than owned because the five relations' rankings have different |V|
// and refresh on independent cadences.
var colScratchPool sync.Pool

func getColScratch(n int) *[]float32 {
	if p, ok := colScratchPool.Get().(*[]float32); ok && cap(*p) >= n {
		*p = (*p)[:n]
		return p
	}
	buf := make([]float32, n)
	return &buf
}

// recompute rebuilds the K ranking lists and σ vector into the inactive
// snapshot buffer and publishes it. O(K·|V|·log|V|) work, split across
// GOMAXPROCS workers by chunks of dimensions; each worker gathers its
// column into contiguous scratch (the matrix stores it with stride K,
// which the old closure sort chased on every comparison) and introsorts
// the id slice in place. Chunking and each per-dimension sort depend
// only on the matrix contents, so the published ranking is deterministic
// regardless of worker count. Caller must hold mu (or be the
// single-threaded constructor).
func (r *dimRanking) recompute() {
	start := time.Now()
	n, k := r.mat.N, r.mat.K
	if r.mean == nil {
		r.mean = make([]float32, k)
		r.variance = make([]float32, k)
	}
	vecmath.ColumnMeanVar(r.mat.Data, n, k, r.mean, r.variance)
	next := r.bufs[r.cur^1]
	if next == nil {
		backing := make([]int32, k*n)
		next = &rankSnapshot{
			rank:  make([][]int32, k),
			sigma: make([]float32, k),
		}
		for f := 0; f < k; f++ {
			next.rank[f] = backing[f*n : (f+1)*n : (f+1)*n]
		}
		r.bufs[r.cur^1] = next
	}
	data := r.mat.Data
	par.Chunks(k, par.Workers(0), func(lo, hi int) {
		colp := getColScratch(n)
		col := *colp
		for f := lo; f < hi; f++ {
			next.sigma[f] = float32(math.Sqrt(float64(r.variance[f])))
			for i := 0; i < n; i++ {
				col[i] = data[i*k+f]
			}
			ids := next.rank[f]
			for i := range ids {
				ids[i] = int32(i)
			}
			isort.SortDesc(ids, col)
		}
		colScratchPool.Put(colp)
	})
	r.cur ^= 1
	r.snap.Store(next)
	if r.stats != nil {
		r.stats.recordRebuild(time.Since(start))
	}
}

// drawBatch is the probabilistic counting granularity: instead of every
// noise draw touching the shared atomic counter — which serializes
// Hogwild workers on one contended cache line and was measured to cap the
// thread speedup below 1.6× — each draw increments with probability
// 1/drawBatch by drawBatch. The expected count is exact and the cadence
// error is far below the n·log n recompute interval.
const drawBatch = 64

// maybeRecompute refreshes the snapshot when enough draws have
// accumulated. Only one goroutine recomputes; others keep using the stale
// snapshot, which is exactly the staleness the paper's amortization
// argument allows.
func (r *dimRanking) maybeRecompute(src *rng.Source) {
	if src.Uint64()%drawBatch != 0 {
		return
	}
	n := r.draws.Add(drawBatch)
	if n < r.nextRecompute.Load() {
		return
	}
	if !r.mu.TryLock() {
		return
	}
	defer r.mu.Unlock()
	if n < r.nextRecompute.Load() {
		return // another worker already refreshed
	}
	r.recompute()
	r.nextRecompute.Store(n + r.recomputeEvery)
}

// sample draws one noise node for the given context vector: a Geometric
// rank s and a dimension f ~ p(f|ctx) ∝ |ctx_f|·σ_f, returning the node at
// position s of dimension f's ranking — read from the top when ctx_f is
// positive and from the bottom when it is negative, since the largest
// products ctx_f·v_{k,f} (the most adversarial nodes, per Eqn. 6's intent)
// then sit at opposite ends. Returns -1 when every |ctx_f|·σ_f is zero
// (caller falls back to the degree sampler).
func (r *dimRanking) sample(ctx []float32, src *rng.Source) int32 {
	r.maybeRecompute(src)
	snap := r.snap.Load()

	// Branchless single-precision weight accumulation: a zero-weight
	// dimension contributes nothing to either pass and can never newly
	// satisfy u < cum, so the per-element validity branches the float64
	// version carried are redundant — and this loop runs on every noise
	// draw, where those branches profiled at several percent of a whole
	// training step.
	sigma := snap.sigma
	var total float32
	for f, c := range ctx {
		total += abs32(c) * sigma[f]
	}
	if total <= 0 {
		return -1
	}
	u := src.Float32() * total
	var cum float32
	dim := len(ctx) - 1
	for f, c := range ctx {
		cum += abs32(c) * sigma[f]
		if u < cum {
			dim = f
			break
		}
	}
	s := r.geom.Sample(src)
	list := snap.rank[dim]
	if ctx[dim] < 0 {
		return list[len(list)-1-s]
	}
	return list[s]
}

func abs32(x float32) float32 {
	return math.Float32frombits(math.Float32bits(x) &^ (1 << 31))
}

// sampleScratch holds the exact adaptive sampler's per-draw ranking
// buffers. The sampler re-ranks every node on every draw, and
// allocating the score and id arrays each time made the (ablation-only)
// exact mode an order of magnitude slower than the ranking itself
// warrants — so each training worker owns one scratch and threads it
// through step → noiseNode → exactAdaptiveSample.
type sampleScratch struct {
	scores []float32
	ids    []int32
}

// grow sizes the buffers for n nodes, reusing capacity across draws.
func (ss *sampleScratch) grow(n int) ([]float32, []int32) {
	if cap(ss.scores) < n {
		ss.scores = make([]float32, n)
		ss.ids = make([]int32, n)
	}
	return ss.scores[:n], ss.ids[:n]
}

// exactAdaptiveSample implements the exact form of Eqn. 6 for the
// ablation: rank every node of mat by its similarity σ(ctx·v) to the
// context and return the node at a Geometric-sampled rank. The rank s
// is drawn first so a quickselect can stop at the one order statistic
// actually read — the Geometric tail means ranks past its quantile are
// effectively never touched, so the old full descending sort was
// O(|V|·log|V|) of wasted comparisons per draw against quickselect's
// expected O(|V|). Scores stay float32: the previous float64 copies
// were exact promotions, so comparisons (and hence the ranking) are
// unchanged. ss provides the ranking buffers.
func exactAdaptiveSample(ctx []float32, mat *Matrix, geom *rng.Geometric, src *rng.Source, ss *sampleScratch) int32 {
	n := mat.N
	scores, ids := ss.grow(n)
	vecmath.DotBatch(ctx, mat.Data, mat.K, scores)
	for i := range ids {
		ids[i] = int32(i)
	}
	// Descending rank s == ascending rank n-1-s.
	s := geom.Sample(src)
	isort.SelectAsc(ids, scores, n-1-s)
	return ids[n-1-s]
}
