package core

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	m := newTestModel(t, nil)
	m.TrainSteps(2000)
	snap := m.Snapshot()

	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps != 2000 || got.Cfg.K != m.Cfg.K {
		t.Errorf("metadata mismatch: steps=%d K=%d", got.Steps, got.Cfg.K)
	}
	for i := range snap.Users.Data {
		if got.Users.Data[i] != snap.Users.Data[i] {
			t.Fatal("user embeddings corrupted in round trip")
		}
	}
	// Scores must agree between live model and snapshot.
	if got.ScoreTriple(1, 2, 3) != m.ScoreTriple(1, 2, 3) {
		t.Error("snapshot triple score differs from model")
	}
	if got.ScoreUserEvent(0, 1) != m.ScoreUserEvent(0, 1) {
		t.Error("snapshot event score differs from model")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	m := newTestModel(t, nil)
	snap := m.Snapshot()
	before := snap.Users.Data[0]
	m.TrainSteps(2000)
	if snap.Users.Data[0] != before {
		t.Fatal("snapshot aliases live model storage")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	m := newTestModel(t, nil)
	m.TrainSteps(500)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := m.Snapshot().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps != 500 {
		t.Errorf("Steps = %d", got.Steps)
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadSnapshotRejectsMalformedShape(t *testing.T) {
	m := newTestModel(t, nil)
	snap := m.Snapshot()
	snap.Users.K = snap.Users.K + 1 // corrupt
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(&buf); err == nil {
		t.Fatal("malformed matrix shape accepted")
	}
}

func TestLoadSnapshotMissingFile(t *testing.T) {
	if _, err := LoadSnapshotFile(filepath.Join(t.TempDir(), "absent.gob")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFoldInColdEvent(t *testing.T) {
	g := testGraphs(t)
	m := newTestModel(t, nil)
	m.TrainSteps(50000)
	snap := m.Snapshot()

	// Fold in a synthetic cold event that copies an existing event's
	// context; its vector should land near that event's trained vector in
	// score space.
	ref := int32(5)
	refWords := make([]string, 0)
	nbrs, _ := g.EventWord.Neighbors(0, ref)
	for _, w := range nbrs {
		refWords = append(refWords, g.Vocab.Word(w))
	}
	cold := ColdEvent{
		Words:  refWords,
		Region: int32(g.EventRegion[ref]),
		Start:  time.Date(2012, 6, 15, 19, 0, 0, 0, time.UTC),
	}
	vec, err := snap.FoldIn(g.Vocab, cold)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != m.K() {
		t.Fatalf("fold-in vector length %d", len(vec))
	}
	var nonzero bool
	for _, v := range vec {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("fold-in produced the zero vector")
	}
	// Users who score the reference event highly should also score the
	// folded-in clone highly. Checked as Pearson correlation between the
	// two per-user score vectors: an aggregate over all users, unlike a
	// single top-user comparison, which flaps when an unrelated change
	// (e.g. noise-sampler tie-breaking) shifts the training trajectory.
	// Uncorrelated scores hover near 0; trained fold-in sits well above.
	n := snap.Users.N
	var sx, sy, sxx, syy, sxy float64
	for u := 0; u < n; u++ {
		x := float64(snap.ScoreUserEvent(int32(u), ref))
		y := float64(snap.ScoreUserColdEvent(int32(u), vec))
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	fn := float64(n)
	cov := sxy/fn - (sx/fn)*(sy/fn)
	varX := sxx/fn - (sx/fn)*(sx/fn)
	varY := syy/fn - (sy/fn)*(sy/fn)
	corr := cov / math.Sqrt(1e-12+varX*varY)
	if corr < 0.15 {
		t.Errorf("fold-in scores barely correlate with reference event affinity: r=%.3f over %d users", corr, n)
	}
}

func TestFoldInRejectsBadRegion(t *testing.T) {
	g := testGraphs(t)
	m := newTestModel(t, nil)
	snap := m.Snapshot()
	_, err := snap.FoldIn(g.Vocab, ColdEvent{Region: int32(g.NumRegions + 5), Start: time.Now()})
	if err == nil {
		t.Fatal("out-of-range region accepted")
	}
}
