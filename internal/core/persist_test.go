package core

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	m := newTestModel(t, nil)
	m.TrainSteps(2000)
	snap := m.Snapshot()

	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps != 2000 || got.Cfg.K != m.Cfg.K {
		t.Errorf("metadata mismatch: steps=%d K=%d", got.Steps, got.Cfg.K)
	}
	for i := range snap.Users.Data {
		if got.Users.Data[i] != snap.Users.Data[i] {
			t.Fatal("user embeddings corrupted in round trip")
		}
	}
	// Scores must agree between live model and snapshot.
	if got.ScoreTriple(1, 2, 3) != m.ScoreTriple(1, 2, 3) {
		t.Error("snapshot triple score differs from model")
	}
	if got.ScoreUserEvent(0, 1) != m.ScoreUserEvent(0, 1) {
		t.Error("snapshot event score differs from model")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	m := newTestModel(t, nil)
	snap := m.Snapshot()
	before := snap.Users.Data[0]
	m.TrainSteps(2000)
	if snap.Users.Data[0] != before {
		t.Fatal("snapshot aliases live model storage")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	m := newTestModel(t, nil)
	m.TrainSteps(500)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := m.Snapshot().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps != 500 {
		t.Errorf("Steps = %d", got.Steps)
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadSnapshotRejectsMalformedShape(t *testing.T) {
	m := newTestModel(t, nil)
	snap := m.Snapshot()
	snap.Users.K = snap.Users.K + 1 // corrupt
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(&buf); err == nil {
		t.Fatal("malformed matrix shape accepted")
	}
}

func TestLoadSnapshotMissingFile(t *testing.T) {
	if _, err := LoadSnapshotFile(filepath.Join(t.TempDir(), "absent.gob")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFoldInColdEvent(t *testing.T) {
	g := testGraphs(t)
	m := newTestModel(t, nil)
	m.TrainSteps(50000)
	snap := m.Snapshot()

	// Fold in a synthetic cold event that copies an existing event's
	// context; its vector should land near that event's trained vector in
	// score space.
	ref := int32(5)
	refWords := make([]string, 0)
	nbrs, _ := g.EventWord.Neighbors(0, ref)
	for _, w := range nbrs {
		refWords = append(refWords, g.Vocab.Word(w))
	}
	cold := ColdEvent{
		Words:  refWords,
		Region: int32(g.EventRegion[ref]),
		Start:  time.Date(2012, 6, 15, 19, 0, 0, 0, time.UTC),
	}
	vec, err := snap.FoldIn(g.Vocab, cold)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != m.K() {
		t.Fatalf("fold-in vector length %d", len(vec))
	}
	var nonzero bool
	for _, v := range vec {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("fold-in produced the zero vector")
	}
	// Users who score the reference event highly should also score the
	// folded-in clone highly: rank correlation check via top-user overlap.
	topRef := -1
	var bestRef float32 = -1
	topCold := -1
	var bestCold float32 = -1
	for u := 0; u < snap.Users.N; u++ {
		if s := snap.ScoreUserEvent(int32(u), ref); s > bestRef {
			bestRef, topRef = s, u
		}
		if s := snap.ScoreUserColdEvent(int32(u), vec); s > bestCold {
			bestCold, topCold = s, u
		}
	}
	if topRef < 0 || topCold < 0 {
		t.Fatal("no top users found")
	}
	// The two top users need not be identical, but the cold clone's score
	// for the reference's top user should be competitive (>= half best).
	if snap.ScoreUserColdEvent(int32(topRef), vec) < bestCold*0.3 {
		t.Errorf("fold-in vector disagrees wildly with reference event affinity")
	}
}

func TestFoldInRejectsBadRegion(t *testing.T) {
	g := testGraphs(t)
	m := newTestModel(t, nil)
	snap := m.Snapshot()
	_, err := snap.FoldIn(g.Vocab, ColdEvent{Region: int32(g.NumRegions + 5), Start: time.Now()})
	if err == nil {
		t.Fatal("out-of-range region accepted")
	}
}
