package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"ebsn/internal/vecmath"
)

// Snapshot is the serializable state of a trained model: the learned
// embeddings plus the config they were trained with. Sampler state and
// graphs are rebuildable and deliberately excluded — a snapshot is what a
// recommendation service loads.
type Snapshot struct {
	Cfg       Config
	Steps     int64
	Users     *Matrix
	Events    *Matrix
	Locations *Matrix
	Times     *Matrix
	Words     *Matrix
}

// Snapshot file format (version 1):
//
//	[0:8)   magic "EBSNSNAP"
//	[8:12)  format version, big-endian uint32
//	[12:20) payload length, big-endian uint64
//	[20:24) CRC32 (IEEE) of the payload
//	[24:)   gob-encoded Snapshot
//
// Files written before the header existed are bare gob streams;
// ReadSnapshot still accepts them (they cannot start with the magic:
// a gob stream's first byte is a small type-definition length).
const (
	snapshotMagic   = "EBSNSNAP"
	snapshotVersion = 1
	headerLen       = len(snapshotMagic) + 4 + 8 + 4
)

// maxSnapshotPayload bounds how much ReadSnapshot will buffer from a
// declared payload length, so a corrupt header cannot drive an
// arbitrarily large allocation.
const maxSnapshotPayload = 16 << 30

// Typed failure classes for snapshot loading, matchable with errors.Is.
var (
	// ErrSnapshotCorrupt marks truncated, bit-flipped or otherwise
	// undecodable snapshot input.
	ErrSnapshotCorrupt = errors.New("snapshot corrupt")
	// ErrSnapshotVersion marks a valid header whose format version this
	// build does not understand.
	ErrSnapshotVersion = errors.New("unsupported snapshot version")
)

// Test seams for crash injection: SaveFile writes through encodeWriter
// and renames with renameFile, so tests can force short writes and
// failed renames without touching the filesystem layer.
var (
	encodeWriter = func(w io.Writer) io.Writer { return w }
	renameFile   = os.Rename
)

// Snapshot captures the model's current embeddings (deep copies).
func (m *Model) Snapshot() *Snapshot {
	return &Snapshot{
		Cfg:       m.Cfg,
		Steps:     m.steps,
		Users:     m.Users.Clone(),
		Events:    m.Events.Clone(),
		Locations: m.Locations.Clone(),
		Times:     m.Times.Clone(),
		Words:     m.Words.Clone(),
	}
}

// Encode writes the snapshot in the versioned format: header, format
// version, payload length and CRC32 checksum, then the gob payload.
func (s *Snapshot) Encode(w io.Writer) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return fmt.Errorf("core: encode snapshot: %w", err)
	}
	header := make([]byte, headerLen)
	copy(header, snapshotMagic)
	binary.BigEndian.PutUint32(header[8:], snapshotVersion)
	binary.BigEndian.PutUint64(header[12:], uint64(payload.Len()))
	binary.BigEndian.PutUint32(header[20:], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("core: write snapshot header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("core: write snapshot payload: %w", err)
	}
	return nil
}

// ReadSnapshot decodes a snapshot written by Encode and validates its
// checksum and shape. Legacy bare-gob files (written before the
// versioned header) are still accepted. Truncated, bit-flipped and
// wrong-magic input fails with an error wrapping ErrSnapshotCorrupt;
// a future format version fails with ErrSnapshotVersion.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	head := make([]byte, len(snapshotMagic))
	n, err := io.ReadFull(r, head)
	if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return nil, fmt.Errorf("core: read snapshot: %w", err)
	}
	if n < len(snapshotMagic) || string(head) != snapshotMagic {
		// No versioned header: either a legacy bare-gob snapshot or
		// garbage; the gob decoder distinguishes the two.
		return decodeSnapshotPayload(io.MultiReader(bytes.NewReader(head[:n]), r), "legacy ")
	}

	rest := make([]byte, headerLen-len(snapshotMagic))
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, fmt.Errorf("core: snapshot header truncated: %w", ErrSnapshotCorrupt)
	}
	version := binary.BigEndian.Uint32(rest[0:4])
	if version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot format version %d, this build reads %d: %w",
			version, snapshotVersion, ErrSnapshotVersion)
	}
	length := binary.BigEndian.Uint64(rest[4:12])
	wantCRC := binary.BigEndian.Uint32(rest[12:16])
	if length > maxSnapshotPayload {
		return nil, fmt.Errorf("core: snapshot declares %d-byte payload: %w", length, ErrSnapshotCorrupt)
	}
	payload := make([]byte, int(length))
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("core: snapshot payload truncated: %w", ErrSnapshotCorrupt)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("core: snapshot checksum mismatch (stored %08x, computed %08x): %w",
			wantCRC, got, ErrSnapshotCorrupt)
	}
	return decodeSnapshotPayload(bytes.NewReader(payload), "")
}

// decodeSnapshotPayload gob-decodes a snapshot and validates its matrix
// shapes. kind prefixes error messages ("legacy " for headerless files).
func decodeSnapshotPayload(r io.Reader, kind string) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decode %ssnapshot: %v: %w", kind, err, ErrSnapshotCorrupt)
	}
	for name, mat := range map[string]*Matrix{
		"users": s.Users, "events": s.Events, "locations": s.Locations,
		"times": s.Times, "words": s.Words,
	} {
		if mat == nil {
			return nil, fmt.Errorf("core: %ssnapshot missing %s matrix: %w", kind, name, ErrSnapshotCorrupt)
		}
		if mat.K != s.Cfg.K || len(mat.Data) != mat.N*mat.K {
			return nil, fmt.Errorf("core: %ssnapshot %s matrix malformed: N=%d K=%d len=%d (cfg K=%d): %w",
				kind, name, mat.N, mat.K, len(mat.Data), s.Cfg.K, ErrSnapshotCorrupt)
		}
	}
	return &s, nil
}

// SaveFile writes the snapshot to path atomically: the bytes go to a
// temp file in the target directory, are fsynced, and only then renamed
// over path. A crash or error at any point leaves either the old file
// or no file at path — never a partial snapshot.
func (s *Snapshot) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: save snapshot: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = s.Encode(encodeWriter(f)); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("core: sync snapshot: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("core: close snapshot: %w", err)
	}
	if err = renameFile(tmp, path); err != nil {
		return fmt.Errorf("core: commit snapshot: %w", err)
	}
	// Persist the rename itself. Directory fsync is best-effort: some
	// filesystems reject it, and the data file is already durable.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadSnapshotFile reads a snapshot from path.
func LoadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load snapshot: %w", err)
	}
	defer f.Close()
	s, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("core: load snapshot %s: %w", path, err)
	}
	return s, nil
}

// ScoreUserEvent mirrors Model.ScoreUserEvent for loaded snapshots.
func (s *Snapshot) ScoreUserEvent(u, x int32) float32 {
	return vecmath.Dot(s.Users.Row(u), s.Events.Row(x))
}

// ScoreTriple mirrors Model.ScoreTriple for loaded snapshots.
func (s *Snapshot) ScoreTriple(u, partner, x int32) float32 {
	uv, pv, xv := s.Users.Row(u), s.Users.Row(partner), s.Events.Row(x)
	return vecmath.Dot(uv, xv) + vecmath.Dot(pv, xv) + vecmath.Dot(uv, pv)
}

// RestoreSnapshot copies saved embeddings into a freshly constructed
// model, replacing its random initialization, and resumes the step
// counter (and with it the learning-rate decay schedule) from
// Snapshot.Steps. The snapshot's matrix shapes must match the model's
// graphs.
func (m *Model) RestoreSnapshot(s *Snapshot) error {
	for _, pair := range []struct {
		name string
		dst  *Matrix
		src  *Matrix
	}{
		{"users", m.Users, s.Users},
		{"events", m.Events, s.Events},
		{"locations", m.Locations, s.Locations},
		{"times", m.Times, s.Times},
		{"words", m.Words, s.Words},
	} {
		if pair.src == nil || pair.src.N != pair.dst.N || pair.src.K != pair.dst.K {
			return fmt.Errorf("core: snapshot %s matrix shape mismatch", pair.name)
		}
		copy(pair.dst.Data, pair.src.Data)
	}
	m.steps = s.Steps
	return nil
}
