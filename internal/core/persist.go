package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ebsn/internal/vecmath"
)

// Snapshot is the serializable state of a trained model: the learned
// embeddings plus the config they were trained with. Sampler state and
// graphs are rebuildable and deliberately excluded — a snapshot is what a
// recommendation service loads.
type Snapshot struct {
	Cfg       Config
	Steps     int64
	Users     *Matrix
	Events    *Matrix
	Locations *Matrix
	Times     *Matrix
	Words     *Matrix
}

// Snapshot captures the model's current embeddings (deep copies).
func (m *Model) Snapshot() *Snapshot {
	return &Snapshot{
		Cfg:       m.Cfg,
		Steps:     m.steps,
		Users:     m.Users.Clone(),
		Events:    m.Events.Clone(),
		Locations: m.Locations.Clone(),
		Times:     m.Times.Clone(),
		Words:     m.Words.Clone(),
	}
}

// Encode writes the snapshot with encoding/gob.
func (s *Snapshot) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("core: encode snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot decodes a snapshot written by Encode and validates its
// shape.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	for name, mat := range map[string]*Matrix{
		"users": s.Users, "events": s.Events, "locations": s.Locations,
		"times": s.Times, "words": s.Words,
	} {
		if mat == nil {
			return nil, fmt.Errorf("core: snapshot missing %s matrix", name)
		}
		if mat.K != s.Cfg.K || len(mat.Data) != mat.N*mat.K {
			return nil, fmt.Errorf("core: snapshot %s matrix malformed: N=%d K=%d len=%d (cfg K=%d)",
				name, mat.N, mat.K, len(mat.Data), s.Cfg.K)
		}
	}
	return &s, nil
}

// SaveFile writes the snapshot to path.
func (s *Snapshot) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save snapshot: %w", err)
	}
	if err := s.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSnapshotFile reads a snapshot from path.
func LoadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load snapshot: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// ScoreUserEvent mirrors Model.ScoreUserEvent for loaded snapshots.
func (s *Snapshot) ScoreUserEvent(u, x int32) float32 {
	return vecmath.Dot(s.Users.Row(u), s.Events.Row(x))
}

// ScoreTriple mirrors Model.ScoreTriple for loaded snapshots.
func (s *Snapshot) ScoreTriple(u, partner, x int32) float32 {
	uv, pv, xv := s.Users.Row(u), s.Users.Row(partner), s.Events.Row(x)
	return vecmath.Dot(uv, xv) + vecmath.Dot(pv, xv) + vecmath.Dot(uv, pv)
}

// RestoreSnapshot copies saved embeddings into a freshly constructed
// model, replacing its random initialization. The snapshot's matrix
// shapes must match the model's graphs.
func (m *Model) RestoreSnapshot(s *Snapshot) error {
	for _, pair := range []struct {
		name string
		dst  *Matrix
		src  *Matrix
	}{
		{"users", m.Users, s.Users},
		{"events", m.Events, s.Events},
		{"locations", m.Locations, s.Locations},
		{"times", m.Times, s.Times},
		{"words", m.Words, s.Words},
	} {
		if pair.src == nil || pair.src.N != pair.dst.N || pair.src.K != pair.dst.K {
			return fmt.Errorf("core: snapshot %s matrix shape mismatch", pair.name)
		}
		copy(pair.dst.Data, pair.src.Data)
	}
	m.steps = s.Steps
	return nil
}
