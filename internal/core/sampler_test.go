package core

import (
	"math"
	"testing"

	"ebsn/internal/rng"
)

func rankedMatrix() *Matrix {
	// 6 nodes, 2 dims. Dim 0 orders nodes 0>1>2>3>4>5; dim 1 reverses.
	m := NewMatrix(6, 2)
	for i := 0; i < 6; i++ {
		m.Row(int32(i))[0] = float32(6 - i)
		m.Row(int32(i))[1] = float32(i + 1)
	}
	return m
}

func TestDimRankingOrder(t *testing.T) {
	r := newDimRanking(rankedMatrix(), 200, nil)
	snap := r.snap.Load()
	for pos := 0; pos < 6; pos++ {
		if snap.rank[0][pos] != int32(pos) {
			t.Errorf("dim0 rank[%d] = %d, want %d", pos, snap.rank[0][pos], pos)
		}
		if snap.rank[1][pos] != int32(5-pos) {
			t.Errorf("dim1 rank[%d] = %d, want %d", pos, snap.rank[1][pos], 5-pos)
		}
	}
	if snap.sigma[0] <= 0 || snap.sigma[1] <= 0 {
		t.Error("sigma should be positive for spread columns")
	}
}

func TestDimRankingSampleFollowsContext(t *testing.T) {
	r := newDimRanking(rankedMatrix(), 0.7, nil) // tight lambda: top ranks dominate
	src := rng.New(1)

	// Context loaded on dim 0 -> top-ranked node on dim 0 is node 0.
	ctx := []float32{1, 0}
	counts := make([]int, 6)
	for i := 0; i < 20000; i++ {
		v := r.sample(ctx, src)
		if v < 0 || v >= 6 {
			t.Fatalf("sample out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] < counts[5] {
		t.Errorf("dim0 context should favor node 0: %v", counts)
	}
	if float64(counts[0])/20000 < 0.5 {
		t.Errorf("lambda=0.7 should concentrate on rank 0: %v", counts)
	}

	// Context on dim 1 -> node 5 dominates.
	ctx = []float32{0, 1}
	counts = make([]int, 6)
	for i := 0; i < 20000; i++ {
		counts[r.sample(ctx, src)]++
	}
	if counts[5] < counts[0] {
		t.Errorf("dim1 context should favor node 5: %v", counts)
	}
}

func TestDimRankingZeroContextFallsBack(t *testing.T) {
	r := newDimRanking(rankedMatrix(), 200, nil)
	src := rng.New(2)
	if v := r.sample([]float32{0, 0}, src); v != -1 {
		t.Errorf("zero context returned %d, want -1 sentinel", v)
	}
}

func TestDimRankingZeroVarianceDimensionIgnored(t *testing.T) {
	m := NewMatrix(4, 2)
	// dim 0 constant, dim 1 spread.
	for i := 0; i < 4; i++ {
		m.Row(int32(i))[0] = 1
		m.Row(int32(i))[1] = float32(i)
	}
	r := newDimRanking(m, 0.5, nil)
	src := rng.New(3)
	// Context entirely on the constant dimension -> no usable dimension.
	if v := r.sample([]float32{1, 0}, src); v != -1 {
		t.Errorf("constant-dim context returned %d, want -1", v)
	}
	// Mixed context must use dim 1 and favor node 3 (highest value).
	counts := make([]int, 4)
	for i := 0; i < 5000; i++ {
		v := r.sample([]float32{1, 1}, src)
		if v < 0 {
			t.Fatal("mixed context fell back unexpectedly")
		}
		counts[v]++
	}
	if counts[3] < counts[0] {
		t.Errorf("expected node 3 favored: %v", counts)
	}
}

func TestDimRankingRecomputeTracksUpdates(t *testing.T) {
	m := rankedMatrix()
	r := newDimRanking(m, 0.5, nil)
	// Flip dim-0 ordering: node 5 becomes top.
	for i := 0; i < 6; i++ {
		m.Row(int32(i))[0] = float32(i)
	}
	r.recompute()
	snap := r.snap.Load()
	if snap.rank[0][0] != 5 {
		t.Errorf("after recompute, dim0 top = %d, want 5", snap.rank[0][0])
	}
}

func TestMaybeRecomputeCadence(t *testing.T) {
	m := rankedMatrix()
	r := newDimRanking(m, 200, nil)
	src := rng.New(3)
	// Mutate the matrix without recomputing: the snapshot stays stale for
	// roughly recomputeEvery draws (counting is probabilistic in batches
	// of drawBatch, so allow slack on both sides)...
	m.Row(0)[0] = -100
	before := r.snap.Load()
	for i := int64(0); i < r.recomputeEvery/16; i++ {
		r.maybeRecompute(src)
	}
	if r.snap.Load() != before {
		t.Fatal("snapshot refreshed far before cadence")
	}
	// ...and must refresh well before several multiples of the cadence.
	for i := int64(0); i < 8*r.recomputeEvery; i++ {
		r.maybeRecompute(src)
	}
	if r.snap.Load() == before {
		t.Fatal("snapshot not refreshed after cadence")
	}
}

func TestExactAdaptiveSample(t *testing.T) {
	m := rankedMatrix()
	geom := rng.NewGeometric(0.5, m.N)
	src := rng.New(5)
	// Context aligned with dim 0: similarity ranks node 0 first.
	ctx := []float32{1, 0}
	counts := make([]int, 6)
	ss := &sampleScratch{}
	for i := 0; i < 10000; i++ {
		counts[exactAdaptiveSample(ctx, m, geom, src, ss)]++
	}
	if counts[0] < 5000 {
		t.Errorf("exact sampler should concentrate on node 0: %v", counts)
	}
	for v := 1; v < 6; v++ {
		if counts[v] > counts[0] {
			t.Errorf("node %d sampled more than top node: %v", v, counts)
		}
	}
}

func TestExactVsApproxAgreeOnSeparableContext(t *testing.T) {
	// On a matrix where one dimension dominates the similarity ordering,
	// the approximate sampler's top pick matches the exact sampler's.
	m := NewMatrix(20, 4)
	src := rng.New(7)
	for i := 0; i < 20; i++ {
		row := m.Row(int32(i))
		row[2] = float32(20 - i) // dim 2 carries the ordering
		for f := 0; f < 4; f++ {
			if f != 2 {
				row[f] = 0.01 * float32(src.Float64())
			}
		}
	}
	ctx := []float32{0, 0, 5, 0}
	r := newDimRanking(m, 1, nil)
	geom := rng.NewGeometric(1, 20)
	exCounts := make([]int, 20)
	apCounts := make([]int, 20)
	ss := &sampleScratch{}
	for i := 0; i < 20000; i++ {
		exCounts[exactAdaptiveSample(ctx, m, geom, src, ss)]++
		apCounts[r.sample(ctx, src)]++
	}
	exTop := argmax(exCounts)
	apTop := argmax(apCounts)
	if exTop != 0 || apTop != 0 {
		t.Errorf("top samples: exact=%d approx=%d, want 0/0", exTop, apTop)
	}
	// Distributions should roughly agree in total-variation distance.
	var tv float64
	for i := range exCounts {
		tv += math.Abs(float64(exCounts[i])-float64(apCounts[i])) / 20000
	}
	if tv/2 > 0.15 {
		t.Errorf("exact/approx TV distance %.3f too large", tv/2)
	}
}

func argmax(s []int) int {
	best := 0
	for i, v := range s {
		if v > s[best] {
			best = i
		}
	}
	return best
}
