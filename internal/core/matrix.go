// Package core implements GEM, the paper's graph-based embedding model:
// the bipartite-graph likelihood objective (Eqn. 1-2), negative-sampling
// SGD with the update rules of Eqn. 5, bidirectional negative sampling
// (Eqn. 4), the adaptive adversarial noise sampler of Algorithm 1, the
// edge-count-proportional joint training of Algorithm 2, and the Hogwild
// asynchronous trainer. The PTE baseline and the GEM-P/GEM-A variants are
// configurations of the same machinery, exactly as the paper frames them.
package core

import (
	"fmt"

	"ebsn/internal/rng"
)

// Matrix is a dense row-major embedding matrix: N node vectors of
// dimension K. Matrices are shared between relations (the event matrix
// serves the user-event, event-time, event-word and event-location graphs
// simultaneously), which is what couples the graphs into one latent space.
type Matrix struct {
	N, K int
	Data []float32
}

// NewMatrix allocates an N×K zero matrix.
func NewMatrix(n, k int) *Matrix {
	if n <= 0 || k <= 0 {
		panic(fmt.Sprintf("core: invalid matrix size %dx%d", n, k))
	}
	return &Matrix{N: n, K: k, Data: make([]float32, n*k)}
}

// Row returns the vector of node i. The slice aliases the matrix storage.
func (m *Matrix) Row(i int32) []float32 {
	return m.Data[int(i)*m.K : (int(i)+1)*m.K]
}

// GaussianInit fills the matrix with N(mean, stddev) entries, the paper's
// N(0, 0.01) initialization.
func (m *Matrix) GaussianInit(src *rng.Source, mean, stddev float64) {
	for i := range m.Data {
		m.Data[i] = float32(src.Gaussian(mean, stddev))
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N, m.K)
	copy(c.Data, m.Data)
	return c
}
