package core

import (
	"testing"

	"ebsn/internal/datagen"
	"ebsn/internal/ebsnet"
	"ebsn/internal/geo"
	"ebsn/internal/text"
)

// testGraphs builds relation graphs from the tiny synthetic dataset,
// shared (and cached) across the package's tests.
var cachedGraphs *ebsnet.Graphs

func testGraphs(t testing.TB) *ebsnet.Graphs {
	t.Helper()
	if cachedGraphs != nil {
		return cachedGraphs
	}
	d, err := datagen.Generate(datagen.TinyConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ebsnet.ChronologicalSplit(d, ebsnet.DefaultSplitConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ebsnet.GraphsConfig{
		DBSCAN:        geo.DBSCANConfig{EpsKm: 1.5, MinPts: 3},
		NoiseAttachKm: 5,
		Vocab:         text.VocabConfig{MinDocFreq: 2},
	}
	g, err := ebsnet.BuildGraphs(d, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cachedGraphs = g
	return g
}

func newTestModel(t testing.TB, mutate func(*Config)) *Model {
	t.Helper()
	cfg := DefaultConfig()
	cfg.K = 16
	cfg.Seed = 3
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewModel(testGraphs(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelShapes(t *testing.T) {
	g := testGraphs(t)
	m := newTestModel(t, nil)
	if m.Users.N != g.UserEvent.NumA() || m.Events.N != g.UserEvent.NumB() {
		t.Fatal("matrix sizes disagree with graphs")
	}
	if m.Words.N != g.Vocab.Size() {
		t.Fatal("word matrix size mismatch")
	}
	if m.Locations.N != g.NumRegions {
		t.Fatal("location matrix size mismatch")
	}
	if len(m.Relations) != 5 {
		t.Fatalf("%d relations, want 5", len(m.Relations))
	}
	if m.K() != 16 {
		t.Fatalf("K = %d", m.K())
	}
}

func TestNonNegativeInitialization(t *testing.T) {
	m := newTestModel(t, func(c *Config) { c.NonNegative = true })
	for _, v := range m.Users.Data {
		if v < 0 {
			t.Fatal("negative entry after non-negative init")
		}
	}
}

func TestNonNegativeTrainingKeepsProjection(t *testing.T) {
	m := newTestModel(t, func(c *Config) { c.NonNegative = true })
	m.TrainSteps(5000)
	for _, v := range m.Users.Data {
		if v < 0 {
			t.Fatal("projection violated during training")
		}
	}
}

func TestConfigValidateDefaults(t *testing.T) {
	var c Config
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.K != 60 || c.NegativeSamples != 2 || c.Lambda != 200 || c.LearningRate != 0.05 {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cases := map[string]Config{
		"negK":       {K: -1},
		"negLR":      {LearningRate: -0.1},
		"negM":       {NegativeSamples: -1},
		"negLambda":  {Lambda: -5},
		"negThreads": {Threads: -2},
		"badSampler": {Sampler: SamplerKind(99)},
		"badGraphS":  {GraphSampling: GraphSampling(99)},
	}
	for name, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTrainStepsAdvancesAndStaysFinite(t *testing.T) {
	m := newTestModel(t, nil)
	m.TrainSteps(20000)
	if m.Steps() != 20000 {
		t.Fatalf("Steps = %d", m.Steps())
	}
	for name, mat := range map[string]*Matrix{
		"users": m.Users, "events": m.Events, "locations": m.Locations,
		"times": m.Times, "words": m.Words,
	} {
		for _, v := range mat.Data {
			if v != v { // NaN
				t.Fatalf("%s matrix has invalid entry %v", name, v)
			}
		}
	}
}

func TestTrainingMovesEmbeddings(t *testing.T) {
	m := newTestModel(t, nil)
	before := m.Users.Clone()
	m.TrainSteps(5000)
	moved := 0
	for i := range before.Data {
		if before.Data[i] != m.Users.Data[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("training did not change user embeddings")
	}
}

func TestTrainingLearnsAttendanceSignal(t *testing.T) {
	// After training, observed user-event edges should score higher than
	// random pairs — the most basic learning check.
	g := testGraphs(t)
	for _, sampler := range []SamplerKind{SamplerDegree, SamplerAdaptive, SamplerUniform} {
		m := newTestModel(t, func(c *Config) { c.Sampler = sampler })
		m.TrainSteps(120000)
		var pos, rnd float64
		nEdges := g.UserEvent.NumEdges()
		for i := 0; i < nEdges; i++ {
			e := g.UserEvent.Edge(i)
			pos += float64(m.ScoreUserEvent(e.A, e.B))
			rnd += float64(m.ScoreUserEvent(e.A, int32((int(e.B)+7*i+13)%m.Events.N)))
		}
		if pos <= rnd*1.05+1e-6 {
			t.Errorf("sampler %v: positive score sum %.2f not above random %.2f", sampler, pos, rnd)
		}
	}
}

func TestBidirectionalBeatsNothingBurns(t *testing.T) {
	// Unidirectional training must also run cleanly (PTE mode).
	m := newTestModel(t, func(c *Config) {
		*c = PTEConfig()
		c.K = 16
		c.Seed = 3
	})
	m.TrainSteps(10000)
	if m.Steps() != 10000 {
		t.Fatal("PTE-mode training failed to advance")
	}
}

func TestDeterministicTraining(t *testing.T) {
	m1 := newTestModel(t, nil)
	m2 := newTestModel(t, nil)
	m1.TrainSteps(3000)
	m2.TrainSteps(3000)
	for i := range m1.Users.Data {
		if m1.Users.Data[i] != m2.Users.Data[i] {
			t.Fatal("sequential training is not deterministic for equal seeds")
		}
	}
}

func TestHogwildParityWithSequential(t *testing.T) {
	// Hogwild is racy, so exact parity is impossible; check that the
	// learned quality is comparable: positive edges outscore random ones
	// by a similar margin.
	g := testGraphs(t)
	quality := func(threads int) float64 {
		m := newTestModel(t, func(c *Config) { c.Threads = threads })
		m.TrainSteps(80000)
		var pos, rnd float64
		for i := 0; i < g.UserEvent.NumEdges(); i++ {
			e := g.UserEvent.Edge(i)
			pos += float64(m.ScoreUserEvent(e.A, e.B))
			rnd += float64(m.ScoreUserEvent(e.A, int32((int(e.B)+11*i+5)%m.Events.N)))
		}
		return pos - rnd
	}
	seq := quality(1)
	par := quality(4)
	if par < seq*0.5 {
		t.Errorf("hogwild margin %.2f far below sequential %.2f", par, seq)
	}
}

func TestScoreTripleDecomposition(t *testing.T) {
	m := newTestModel(t, nil)
	m.TrainSteps(1000)
	u, p, x := int32(1), int32(2), int32(3)
	want := m.ScoreUserEvent(u, x) + m.ScoreUserEvent(p, x) + dotf(m.UserVec(u), m.UserVec(p))
	got := m.ScoreTriple(u, p, x)
	if diff := got - want; diff > 1e-4 || diff < -1e-4 {
		t.Errorf("ScoreTriple = %v, want %v", got, want)
	}
}

func dotf(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestGraphSamplingUniformRuns(t *testing.T) {
	m := newTestModel(t, func(c *Config) { c.GraphSampling = GraphUniform })
	m.TrainSteps(5000)
	if m.Steps() != 5000 {
		t.Fatal("uniform graph sampling failed")
	}
}

func TestAdaptiveExactRuns(t *testing.T) {
	m := newTestModel(t, func(c *Config) { c.Sampler = SamplerAdaptiveExact })
	m.TrainSteps(300) // exact sampling is O(|V|K) per draw; keep it tiny
	if m.Steps() != 300 {
		t.Fatal("exact adaptive sampler failed")
	}
}

func TestPresetConfigs(t *testing.T) {
	a, p, pte := GEMAConfig(), GEMPConfig(), PTEConfig()
	if a.Sampler != SamplerAdaptive || !a.Bidirectional || a.GraphSampling != GraphProportional {
		t.Errorf("GEM-A preset wrong: %+v", a)
	}
	if p.Sampler != SamplerDegree || !p.Bidirectional {
		t.Errorf("GEM-P preset wrong: %+v", p)
	}
	if pte.Sampler != SamplerDegree || pte.Bidirectional || pte.GraphSampling != GraphUniform {
		t.Errorf("PTE preset wrong: %+v", pte)
	}
}

func TestSamplerKindStrings(t *testing.T) {
	for k, want := range map[SamplerKind]string{
		SamplerDegree: "degree", SamplerUniform: "uniform",
		SamplerAdaptive: "adaptive", SamplerAdaptiveExact: "adaptive-exact",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if GraphProportional.String() != "proportional" || GraphUniform.String() != "uniform" {
		t.Error("GraphSampling strings wrong")
	}
}
