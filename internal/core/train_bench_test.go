package core

import (
	"testing"
)

// BenchmarkTrainStep times the full Algorithm 2 gradient step — edge
// sample, noise draws, fused Eqn. 5 kernels — on the tiny synthetic
// graphs. The timed section is a single TrainSteps(b.N) call, so ns/op
// reads directly as ns/step and the pooled per-call scratch amortizes
// to its steady state; CI greps the -benchmem output for "0 allocs/op"
// as the allocation regression gate.
func BenchmarkTrainStep(b *testing.B) {
	m := newTestModel(b, nil)
	m.TrainSteps(5000) // warm the scratch pool and rank snapshots
	b.ReportAllocs()
	b.ResetTimer()
	m.TrainSteps(int64(b.N))
}

// BenchmarkTrainStepThreads is BenchmarkTrainStep under 4 Hogwild
// workers; useful with -cpu to study contention, kept out of the alloc
// gate because goroutine spawns are per-call, not per-step.
func BenchmarkTrainStepThreads(b *testing.B) {
	m := newTestModel(b, func(c *Config) { c.Threads = 4 })
	m.TrainSteps(5000)
	b.ReportAllocs()
	b.ResetTimer()
	m.TrainSteps(int64(b.N))
}

// TestTrainStepsSteadyStateAllocs pins the zero-allocation claim the
// benchmark relies on: once the scratch pool and the samplers'
// double-buffered rank snapshots are warm, further training must not
// allocate on the step path (a hair of slack covers sync.Pool entries
// the GC may evict between runs).
func TestTrainStepsSteadyStateAllocs(t *testing.T) {
	m := newTestModel(t, nil)
	m.TrainSteps(20000)
	const stepsPerRun = 2000
	perStep := testing.AllocsPerRun(5, func() {
		m.TrainSteps(stepsPerRun)
	}) / stepsPerRun
	if perStep > 0.01 {
		t.Errorf("steady-state training allocates %.4f allocs/step, want ~0", perStep)
	}
}
