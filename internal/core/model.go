package core

import (
	"fmt"
	"sync"

	"ebsn/internal/alias"
	"ebsn/internal/ebsnet"
	"ebsn/internal/graph"
	"ebsn/internal/rng"
	"ebsn/internal/vecmath"
)

// Relation couples one bipartite graph with the embedding matrices of its
// two sides.
type Relation struct {
	G *graph.Bipartite
	A *Matrix
	B *Matrix

	// Adaptive-sampler state for noise drawn from each side; shared
	// between relations whose sides use the same matrix.
	rankA *dimRanking
	rankB *dimRanking

	geomA *rng.Geometric // exact-sampler rank distributions
	geomB *rng.Geometric
}

// Model is a GEM instance: the five embedding matrices tied together by
// the five relation graphs, plus all sampler state. A Model is created
// untrained and advanced by TrainSteps, so callers can interleave training
// with evaluation (Tables II and III checkpoint along one run).
type Model struct {
	Cfg Config

	Users     *Matrix
	Events    *Matrix
	Locations *Matrix
	Times     *Matrix
	Words     *Matrix

	Relations []Relation

	graphPick *alias.Table // Algorithm 2 Line 3 distribution
	steps     int64        // total gradient steps taken
	src       *rng.Source  // sequential-trainer stream; workers split from it
	workerSeq uint64
	hogwildMu sync.Mutex    // serializes gradient steps under the race detector only
	stats     trainCounters // lock-free telemetry; snapshot via TrainStats
}

// NewModel builds an untrained model over the relation graphs. The graphs
// must come from one ebsnet.BuildGraphs call so their node ID spaces
// agree.
func NewModel(g *ebsnet.Graphs, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{Cfg: cfg, src: rng.New(cfg.Seed)}

	m.Users = NewMatrix(g.UserEvent.NumA(), cfg.K)
	m.Events = NewMatrix(g.UserEvent.NumB(), cfg.K)
	m.Locations = NewMatrix(g.EventLocation.NumB(), cfg.K)
	m.Times = NewMatrix(g.EventTime.NumB(), cfg.K)
	m.Words = NewMatrix(g.EventWord.NumB(), cfg.K)
	init := rng.New(cfg.Seed ^ 0xe5b1)
	for _, mat := range []*Matrix{m.Users, m.Events, m.Locations, m.Times, m.Words} {
		mat.GaussianInit(init, 0, cfg.InitStdDev)
		if cfg.NonNegative {
			// Projection applies from the start so the adaptive sampler's
			// dimension weights are non-negative on step one.
			vecmath.ClampNonNeg(mat.Data)
		}
	}

	m.Relations = []Relation{
		{G: g.UserEvent, A: m.Users, B: m.Events},
		{G: g.EventTime, A: m.Events, B: m.Times},
		{G: g.EventWord, A: m.Events, B: m.Words},
		{G: g.EventLocation, A: m.Events, B: m.Locations},
		{G: g.UserUser, A: m.Users, B: m.Users},
	}

	if cfg.Sampler == SamplerAdaptive {
		ranks := make(map[*Matrix]*dimRanking)
		rankFor := func(mat *Matrix) *dimRanking {
			if r, ok := ranks[mat]; ok {
				return r
			}
			r := newDimRanking(mat, cfg.Lambda, &m.stats)
			ranks[mat] = r
			return r
		}
		for i := range m.Relations {
			m.Relations[i].rankA = rankFor(m.Relations[i].A)
			m.Relations[i].rankB = rankFor(m.Relations[i].B)
		}
	}
	if cfg.Sampler == SamplerAdaptiveExact {
		for i := range m.Relations {
			m.Relations[i].geomA = rng.NewGeometric(cfg.Lambda, m.Relations[i].A.N)
			m.Relations[i].geomB = rng.NewGeometric(cfg.Lambda, m.Relations[i].B.N)
		}
	}

	// Algorithm 2, Line 3: graph selection distribution. Empty graphs get
	// zero weight (a dataset with no friendships must still train). A
	// symmetric graph stores each undirected link twice, but the paper
	// counts friendship links once (Table I), so halve its stored count.
	weights := make([]float64, len(m.Relations))
	nonEmpty := false
	for i, rel := range m.Relations {
		switch cfg.GraphSampling {
		case GraphProportional:
			weights[i] = float64(rel.G.NumEdges())
			if rel.G.Symmetric() {
				weights[i] /= 2
			}
		case GraphUniform:
			if rel.G.NumEdges() > 0 {
				weights[i] = 1
			}
		}
		if weights[i] > 0 {
			nonEmpty = true
		}
	}
	if !nonEmpty {
		return nil, fmt.Errorf("core: all relation graphs are empty")
	}
	m.graphPick = alias.New(weights)
	return m, nil
}

// Steps returns the number of gradient steps taken so far.
func (m *Model) Steps() int64 { return m.steps }

// K returns the embedding dimension.
func (m *Model) K() int { return m.Cfg.K }

// UserVec returns user u's embedding (aliases model storage).
func (m *Model) UserVec(u int32) []float32 { return m.Users.Row(u) }

// EventVec returns event x's embedding (aliases model storage).
func (m *Model) EventVec(x int32) []float32 { return m.Events.Row(x) }

// ScoreUserEvent returns the ranking score u·x for event recommendation.
// Only ordering matters for top-n, so the sigmoid is omitted.
func (m *Model) ScoreUserEvent(u, x int32) float32 {
	return vecmath.Dot(m.Users.Row(u), m.Events.Row(x))
}

// ScoreTriple implements Eqn. 8's ranking part for the joint task: the
// target user's preference for the event, the partner's preference for the
// event, and the social proximity of the pair.
func (m *Model) ScoreTriple(u, partner, x int32) float32 {
	uv := m.Users.Row(u)
	pv := m.Users.Row(partner)
	xv := m.Events.Row(x)
	return vecmath.Dot(uv, xv) + vecmath.Dot(pv, xv) + vecmath.Dot(uv, pv)
}

// noiseNode draws one noise node on the given side of rel for a context
// vector on the opposite side, honoring the configured sampler. The
// degree sampler is the fallback when the adaptive dimension distribution
// degenerates (all-zero context). ss is the worker's sampler scratch,
// used only by the exact-adaptive ablation mode.
func (m *Model) noiseNode(rel *Relation, side graph.Side, ctx []float32, src *rng.Source, ss *sampleScratch) int32 {
	switch m.Cfg.Sampler {
	case SamplerUniform:
		return int32(src.Intn(rel.G.NumNodes(side)))
	case SamplerAdaptive:
		r := rel.rankB
		if side == graph.SideA {
			r = rel.rankA
		}
		if v := r.sample(ctx, src); v >= 0 {
			return v
		}
		return rel.G.SampleNoise(side, src)
	case SamplerAdaptiveExact:
		if side == graph.SideA {
			return exactAdaptiveSample(ctx, rel.A, rel.geomA, src, ss)
		}
		return exactAdaptiveSample(ctx, rel.B, rel.geomB, src, ss)
	default:
		return rel.G.SampleNoise(side, src)
	}
}
