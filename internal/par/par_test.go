package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Error("non-positive worker counts should map to GOMAXPROCS")
	}
	if Workers(5) != 5 {
		t.Error("positive worker count not passed through")
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100} {
			hits := make([]atomic.Int32, n)
			For(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestChunksPartitionExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 7, 100} {
			hits := make([]atomic.Int32, n)
			Chunks(n, workers, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("empty chunk [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, got)
				}
			}
		}
	}
}
