// Package par provides the small worker-pool primitives shared by the
// offline builders: the TA index construction and the adaptive sampler's
// rank rebuilds both fan identical independent tasks across cores. The
// helpers are allocation-light (one goroutine per worker, no channels)
// and their outputs depend only on the task decomposition, never on
// scheduling, so callers stay deterministic for any worker count.
//
// [For] is a counter-balanced parallel loop over [0,n); [Chunks]
// hands out contiguous index ranges when per-index dispatch would
// dominate; [Workers] maps the conventional "0 means pick for me"
// worker count onto GOMAXPROCS. None of these are request-path tools —
// they trade latency for throughput and assume the caller owns all the
// cores it asks for.
package par
