package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers maps the conventional "0 or negative means pick for me"
// worker count onto GOMAXPROCS.
func Workers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// For runs f(i) for every i in [0,n) across up to workers goroutines,
// handing out indices through a shared counter so uneven per-index cost
// still balances. workers ≤ 1 runs inline.
func For(n, workers int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Chunks splits [0,n) into up to workers contiguous ranges and runs
// f(lo,hi) on each concurrently. workers ≤ 1 runs inline. The chunking
// depends only on n and workers, so any per-chunk state a caller derives
// is deterministic for a fixed worker count.
func Chunks(n, workers int, f func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			f(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
