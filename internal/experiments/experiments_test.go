package experiments

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"ebsn/internal/datagen"
)

var cachedEnv *Env

// tinyEnv builds a shared tiny environment; experiments tests verify
// wiring and output shape, not statistical quality (that is the bench
// harness's job at real scale).
func tinyEnv(t testing.TB) *Env {
	t.Helper()
	if cachedEnv != nil {
		return cachedEnv
	}
	env, err := NewEnv(datagen.TinyConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	cachedEnv = env
	return env
}

func tinyOpts() Options {
	return Options{
		K:         16,
		BaseSteps: 40_000,
		Threads:   4,
		EvalCases: 150,
		Ns:        []int{5, 10},
		Seed:      3,
	}
}

func TestNewEnvShape(t *testing.T) {
	env := tinyEnv(t)
	if env.Dataset == nil || env.Split == nil || env.Graphs == nil || env.GraphsS2 == nil {
		t.Fatal("env missing components")
	}
	if len(env.TriplesTest) == 0 {
		t.Fatal("no test triples")
	}
	// Scenario 2 must have strictly fewer user-user edges.
	if env.GraphsS2.UserUser.NumEdges() >= env.Graphs.UserUser.NumEdges() {
		t.Errorf("scenario-2 graph not reduced: %d vs %d",
			env.GraphsS2.UserUser.NumEdges(), env.Graphs.UserUser.NumEdges())
	}
	// Scenario 2 removes exactly the ground-truth links.
	for _, tr := range env.TriplesTest {
		if env.GraphsS2.UserUser.HasEdge(tr.User, tr.Partner) {
			t.Fatalf("ground-truth link (%d,%d) present in scenario-2 graph", tr.User, tr.Partner)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	tbl, err := Fig3(tinyEnv(t), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("fig3 rows = %d, want 6 models", len(tbl.Rows))
	}
	names := []string{"GEM-A", "GEM-P", "PTE", "CBPF", "PER", "PCMF"}
	for i, row := range tbl.Rows {
		if row[0] != names[i] {
			t.Errorf("row %d model = %s, want %s", i, row[0], names[i])
		}
		if len(row) != 3 { // model + acc@5 + acc@10
			t.Errorf("row %d has %d cells", i, len(row))
		}
	}
	if !strings.Contains(tbl.String(), "GEM-A") {
		t.Error("rendered table missing model names")
	}
}

func TestFig4AndFig5Shape(t *testing.T) {
	env := tinyEnv(t)
	opts := tinyOpts()
	t4, err := Fig4(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 7 { // 6 + CFAPR-E
		t.Fatalf("fig4 rows = %d, want 7", len(t4.Rows))
	}
	if t4.Rows[6][0] != "CFAPR-E" {
		t.Errorf("last fig4 row = %s", t4.Rows[6][0])
	}
	t5, err := Fig5(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 7 {
		t.Fatalf("fig5 rows = %d", len(t5.Rows))
	}
}

func TestFig6Speedup(t *testing.T) {
	env := tinyEnv(t)
	opts := tinyOpts()
	opts.BaseSteps = 150_000
	tbl, err := Fig6(env, opts, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("fig6 rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][2] != "1.00x" {
		t.Errorf("single-thread speedup = %s, want 1.00x", tbl.Rows[0][2])
	}
}

func TestTab2Tab3Shape(t *testing.T) {
	env := tinyEnv(t)
	opts := tinyOpts()
	t2, err := Tab2(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != len(convergenceCheckpoints) {
		t.Fatalf("tab2 rows = %d", len(t2.Rows))
	}
	if len(t2.Header) != 7 { // N + 3 models × 2 columns
		t.Fatalf("tab2 header = %v", t2.Header)
	}
	t3, err := Tab3(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != len(convergenceCheckpoints) {
		t.Fatalf("tab3 rows = %d", len(t3.Rows))
	}
}

func TestTab4Tab5Shape(t *testing.T) {
	env := tinyEnv(t)
	opts := tinyOpts()
	t4, err := Tab4(env, opts, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 2 {
		t.Fatalf("tab4 rows = %d", len(t4.Rows))
	}
	t5, err := Tab5(env, opts, []float64{50, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 2 {
		t.Fatalf("tab5 rows = %d", len(t5.Rows))
	}
}

func TestTab6AndFig7(t *testing.T) {
	env := tinyEnv(t)
	opts := tinyOpts()
	t6, err := Tab6(env, opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) != 4 {
		t.Fatalf("tab6 rows = %d", len(t6.Rows))
	}
	f7, err := Fig7(env, opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Rows) != 6 {
		t.Fatalf("fig7 rows = %d", len(f7.Rows))
	}
	// The approximation ratio must be non-decreasing-ish and end high.
	last := f7.Rows[len(f7.Rows)-1]
	var ratio float64
	if _, err := fmtSscan(last[len(last)-1], &ratio); err != nil {
		t.Fatalf("cannot parse ratio %q", last[len(last)-1])
	}
	if ratio < 0.5 {
		t.Errorf("approximation ratio at k=10%% is %v; expected substantial overlap", ratio)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	out := tbl.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "bb") {
		t.Errorf("rendered table: %q", out)
	}
	if Cell(0.12345) != "0.123" {
		t.Errorf("Cell = %s", Cell(0.12345))
	}
}

// fmtSscan wraps fmt.Sscanf for the ratio parse above.
func fmtSscan(s string, out *float64) (int, error) {
	return fmt.Sscanf(s, "%f", out)
}

func TestWriteTSV(t *testing.T) {
	tbl := &Table{Title: "demo", Header: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("3", "4")
	dir := t.TempDir()
	path, err := tbl.WriteTSV(dir, "demo")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "# demo\na\tb\n1\t2\n3\t4\n"
	if string(data) != want {
		t.Errorf("TSV = %q, want %q", data, want)
	}
}

func TestTab1Shape(t *testing.T) {
	tbl := Tab1(tinyEnv(t))
	if len(tbl.Rows) != 12 {
		t.Fatalf("tab1 rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "# of users" {
		t.Errorf("first row = %v", tbl.Rows[0])
	}
}

func TestFig3ExtendedShape(t *testing.T) {
	tbl, err := Fig3Extended(tinyEnv(t), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 { // 6 paper models + DeepWalk + Popularity + Random
		t.Fatalf("fig3x rows = %d", len(tbl.Rows))
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "Random" {
		t.Errorf("last row = %s", last[0])
	}
	// Popularity must be exactly zero on cold events.
	pop := tbl.Rows[len(tbl.Rows)-2]
	if pop[0] != "Popularity" || pop[1] != "0.000" {
		t.Errorf("popularity row = %v", pop)
	}
}

func TestAblationsShape(t *testing.T) {
	tbl, err := Ablations(tinyEnv(t), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("ablation rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "GEM-A (reference)" {
		t.Errorf("first row = %v", tbl.Rows[0])
	}
}

func TestScenarioTablesShape(t *testing.T) {
	env, opts := tinyEnv(t), tinyOpts()

	group, err := ScenarioGroup(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(group.Rows) != 3 || len(group.Header) != 7 {
		t.Fatalf("group table shape: %d rows × %d cols", len(group.Rows), len(group.Header))
	}

	constrained, err := ScenarioConstrained(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(constrained.Rows) != 4 {
		t.Fatalf("constrained rows = %d", len(constrained.Rows))
	}
	if constrained.Rows[0][0] != "100%" || constrained.Rows[3][0] != "10%" {
		t.Errorf("selectivity column = %v ... %v", constrained.Rows[0][0], constrained.Rows[3][0])
	}

	feed, err := ScenarioFeed(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(feed.Rows) != 5 || feed.Rows[4][0] != "event-only bound" {
		t.Fatalf("feed table shape: %d rows, last = %v", len(feed.Rows), feed.Rows[len(feed.Rows)-1])
	}
	// Every m-row must sit at or below the event-only upper bound.
	for _, row := range feed.Rows[:4] {
		for c := 1; c < len(row); c++ {
			if row[c] > feed.Rows[4][c] { // Cell renders %.3f: string order = numeric order
				t.Errorf("feed m=%s acc %s exceeds event-only bound %s", row[0], row[c], feed.Rows[4][c])
			}
		}
	}
}
