package experiments

import (
	"fmt"
	"time"

	"ebsn/internal/core"
	"ebsn/internal/ebsnet"
	"ebsn/internal/eval"
	"ebsn/internal/ta"
)

// convergenceCheckpoints are the sample-count multiples of BaseSteps at
// which Tables II/III report accuracy. The paper sweeps 1M…15M on a 2.8M
// edge dataset; these multiples cover the same relative range.
var convergenceCheckpoints = []float64{0.25, 0.5, 1, 1.5, 2, 3, 4, 6}

// Tab2 reproduces Table II: Accuracy@5/@10 of the cold-start event task
// as a function of the sample count N, for GEM-A, GEM-P and PTE. One
// model per variant is trained incrementally with a fixed learning rate
// (the paper's α = 0.05) and evaluated at each checkpoint. Each cell
// reports the best value reached within the budget — the standard
// early-stopping-on-validation reading of a convergence table, and what
// makes the paper's rows flatline once a model converges rather than
// oscillate with SGD noise.
func Tab2(env *Env, opts Options) (*Table, error) {
	return convergenceTable(env, opts, false,
		"Table II: convergence of cold-start event recommendation ("+env.Cfg.Name+")")
}

// Tab3 reproduces Table III: the same sweep for the event-partner task.
func Tab3(env *Env, opts Options) (*Table, error) {
	return convergenceTable(env, opts, true,
		"Table III: convergence of event-partner recommendation ("+env.Cfg.Name+")")
}

func convergenceTable(env *Env, opts Options, partner bool, title string) (*Table, error) {
	opts.fill()
	variants := []struct {
		name   string
		preset core.Config
	}{
		{"GEM-A", core.GEMAConfig()},
		{"GEM-P", core.GEMPConfig()},
		{"PTE", core.PTEConfig()},
	}
	type colPair struct{ at5, at10 []float64 }
	cols := make([]colPair, len(variants))

	ecfg := opts.evalConfig()
	ecfg.Ns = []int{5, 10}
	for vi, v := range variants {
		cfg := opts.gemConfig(v.preset, 0) // fixed learning rate, as in the paper
		m, err := core.NewModel(env.Graphs, cfg)
		if err != nil {
			return nil, err
		}
		var done int64
		for _, mult := range convergenceCheckpoints {
			target := int64(mult * float64(opts.BaseSteps))
			m.TrainSteps(target - done)
			done = target
			var res eval.Result
			if partner {
				res, err = eval.PartnerRecommendation(m, env.Dataset, env.Split, env.TriplesTest, ebsnet.Test, ecfg)
			} else {
				res, err = eval.EventRecommendation(m, env.Dataset, env.Split, ebsnet.Test, ecfg)
			}
			if err != nil {
				return nil, fmt.Errorf("%s at N=%d: %w", v.name, done, err)
			}
			best5, best10 := res.MustAt(5), res.MustAt(10)
			if k := len(cols[vi].at5); k > 0 {
				if cols[vi].at5[k-1] > best5 {
					best5 = cols[vi].at5[k-1]
				}
				if cols[vi].at10[k-1] > best10 {
					best10 = cols[vi].at10[k-1]
				}
			}
			cols[vi].at5 = append(cols[vi].at5, best5)
			cols[vi].at10 = append(cols[vi].at10, best10)
		}
	}

	t := &Table{Title: title, Header: []string{"N"}}
	for _, v := range variants {
		t.Header = append(t.Header, v.name+"@5", v.name+"@10")
	}
	for ci, mult := range convergenceCheckpoints {
		row := []string{fmt.Sprintf("%d", int64(mult*float64(opts.BaseSteps)))}
		for vi := range variants {
			row = append(row, Cell(cols[vi].at5[ci]), Cell(cols[vi].at10[ci]))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Tab4 reproduces Table IV: the impact of the embedding dimension K on
// Accuracy@10 for both tasks.
func Tab4(env *Env, opts Options, ks []int) (*Table, error) {
	opts.fill()
	if len(ks) == 0 {
		ks = []int{20, 40, 60, 80, 100}
	}
	t := &Table{
		Title: "Table IV: impact of the dimension K (" + env.Cfg.Name + ", acc@10)",
		Header: []string{"K",
			"GEM-A(event)", "GEM-P(event)", "PTE(event)",
			"GEM-A(partner)", "GEM-P(partner)", "PTE(partner)"},
	}
	ecfg := opts.evalConfig()
	ecfg.Ns = []int{10}
	variants := []struct {
		preset core.Config
		budget int64
	}{
		{core.GEMAConfig(), opts.budgetGEMA()},
		{core.GEMPConfig(), opts.budgetGEMP()},
		{core.PTEConfig(), opts.budgetPTE()},
	}
	for _, k := range ks {
		o := opts
		o.K = k
		event := make([]string, len(variants))
		partner := make([]string, len(variants))
		for vi, v := range variants {
			m, err := o.TrainGEM(env.Graphs, v.preset, v.budget)
			if err != nil {
				return nil, err
			}
			res, err := eval.EventRecommendation(m, env.Dataset, env.Split, ebsnet.Test, ecfg)
			if err != nil {
				return nil, err
			}
			pres, err := eval.PartnerRecommendation(m, env.Dataset, env.Split, env.TriplesTest, ebsnet.Test, ecfg)
			if err != nil {
				return nil, err
			}
			event[vi] = Cell(res.MustAt(10))
			partner[vi] = Cell(pres.MustAt(10))
		}
		t.AddRow(append(append([]string{fmt.Sprintf("%d", k)}, event...), partner...)...)
	}
	return t, nil
}

// Tab5 reproduces Table V: the impact of the Geometric density λ on
// GEM-A, for both tasks at n ∈ {5, 10, 20}.
func Tab5(env *Env, opts Options, lambdas []float64) (*Table, error) {
	opts.fill()
	if len(lambdas) == 0 {
		lambdas = []float64{50, 100, 150, 200, 500}
	}
	t := &Table{
		Title: "Table V: impact of the parameter lambda (" + env.Cfg.Name + ")",
		Header: []string{"lambda",
			"event@5", "event@10", "event@20",
			"partner@5", "partner@10", "partner@20"},
	}
	ecfg := opts.evalConfig()
	ecfg.Ns = []int{5, 10, 20}
	for _, lambda := range lambdas {
		preset := core.GEMAConfig()
		preset.Lambda = lambda
		m, err := opts.TrainGEM(env.Graphs, preset, opts.budgetGEMA())
		if err != nil {
			return nil, err
		}
		res, err := eval.EventRecommendation(m, env.Dataset, env.Split, ebsnet.Test, ecfg)
		if err != nil {
			return nil, err
		}
		pres, err := eval.PartnerRecommendation(m, env.Dataset, env.Split, env.TriplesTest, ebsnet.Test, ecfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f", lambda),
			Cell(res.MustAt(5)), Cell(res.MustAt(10)), Cell(res.MustAt(20)),
			Cell(pres.MustAt(5)), Cell(pres.MustAt(10)), Cell(pres.MustAt(20)))
	}
	return t, nil
}

// onlineSetup trains GEM-A and builds the transformed candidate space
// over (test events × all users), shared by Tab6 and Fig7.
type onlineSetup struct {
	model    *core.Model
	events   [][]float32 // test-event vectors
	partners [][]float32 // all user vectors
	eventIDs []int32
	queries  []int32 // sample of target users to issue queries for
}

func newOnlineSetup(env *Env, opts Options, numQueries int) (*onlineSetup, error) {
	opts.fill()
	m, err := opts.TrainGEM(env.Graphs, core.GEMAConfig(), opts.budgetGEMA())
	if err != nil {
		return nil, err
	}
	s := &onlineSetup{model: m}
	for _, x := range env.Split.TestEvents {
		s.events = append(s.events, m.EventVec(x))
		s.eventIDs = append(s.eventIDs, x)
	}
	for u := 0; u < env.Dataset.NumUsers; u++ {
		s.partners = append(s.partners, m.UserVec(int32(u)))
	}
	stride := env.Dataset.NumUsers / numQueries
	if stride < 1 {
		stride = 1
	}
	for u := 0; u < env.Dataset.NumUsers && len(s.queries) < numQueries; u += stride {
		s.queries = append(s.queries, int32(u))
	}
	return s, nil
}

// Tab6 reproduces Table VI: average online recommendation time of GEM-TA
// vs GEM-BF for n ∈ {5, 10, 15, 20} over the full (unpruned) transformed
// space, plus the fraction of candidate pairs TA evaluates.
func Tab6(env *Env, opts Options, numQueries int) (*Table, error) {
	if numQueries <= 0 {
		numQueries = 50
	}
	setup, err := newOnlineSetup(env, opts, numQueries)
	if err != nil {
		return nil, err
	}
	set, err := ta.BuildCandidates(setup.events, setup.partners, ta.BuildConfig{Workers: opts.Threads})
	if err != nil {
		return nil, err
	}
	fast := ta.NewFastIndex(set)
	// The literal Fagin index stores K+1 sorted lists plus coordinates —
	// ~0.5 KB per pair at K=60 — so it is only built when it fits
	// comfortably; the comparison column reads "-" otherwise.
	var fagin *ta.Index
	if len(set.Pairs) <= 2_000_000 {
		fagin = ta.NewIndex(set)
	}

	t := &Table{
		Title: fmt.Sprintf("Table VI: online recommendation efficiency (%s, %d pairs, %d queries)",
			env.Cfg.Name, len(set.Pairs), len(setup.queries)),
		Header: []string{"n", "GEM-TA", "GEM-BF", "Fagin-TA", "TA/BF", "TA access frac"},
	}
	for _, n := range []int{5, 10, 15, 20} {
		var taDur, bfDur, faginDur time.Duration
		var frac float64
		for _, u := range setup.queries {
			uv := setup.model.UserVec(u)
			start := time.Now()
			_, stats := fast.TopN(uv, n)
			taDur += time.Since(start)
			frac += stats.AccessFraction()

			start = time.Now()
			set.BruteForceTopN(uv, n)
			bfDur += time.Since(start)

			if fagin != nil {
				start = time.Now()
				fagin.TopN(uv, n)
				faginDur += time.Since(start)
			}
		}
		q := len(setup.queries)
		faginCell := "-"
		if fagin != nil {
			faginCell = (faginDur / time.Duration(q)).Round(time.Microsecond).String()
		}
		t.AddRow(fmt.Sprintf("%d", n),
			(taDur / time.Duration(q)).Round(time.Microsecond).String(),
			(bfDur / time.Duration(q)).Round(time.Microsecond).String(),
			faginCell,
			fmt.Sprintf("%.2f", float64(taDur)/float64(bfDur)),
			fmt.Sprintf("%.1f%%", frac/float64(q)*100))
	}
	return t, nil
}

// Fig7 reproduces Figure 7: per-partner top-k pruning swept from 1% to
// 10% of the test events — (a) query time for TA and BF, (b) the
// approximation ratio of the pruned space (overlap of its top-10 with the
// full space's top-10).
func Fig7(env *Env, opts Options, numQueries int) (*Table, error) {
	if numQueries <= 0 {
		numQueries = 30
	}
	setup, err := newOnlineSetup(env, opts, numQueries)
	if err != nil {
		return nil, err
	}
	full, err := ta.BuildCandidates(setup.events, setup.partners, ta.BuildConfig{Workers: opts.Threads})
	if err != nil {
		return nil, err
	}
	// Full-space reference top-10 per query user.
	const topN = 10
	reference := make([][]ta.Result, len(setup.queries))
	for i, u := range setup.queries {
		reference[i] = full.BruteForceTopN(setup.model.UserVec(u), topN)
	}

	t := &Table{
		Title:  fmt.Sprintf("Figure 7: pruning the candidate space (%s, top-%d)", env.Cfg.Name, topN),
		Header: []string{"k(%events)", "pairs", "GEM-TA", "GEM-BF", "approx ratio"},
	}
	for _, pct := range []int{1, 2, 4, 6, 8, 10} {
		k := len(setup.events) * pct / 100
		if k < 1 {
			k = 1
		}
		set, err := ta.BuildCandidates(setup.events, setup.partners, ta.BuildConfig{TopKEvents: k, Workers: opts.Threads})
		if err != nil {
			return nil, err
		}
		idx := ta.NewFastIndex(set)
		var taDur, bfDur time.Duration
		var overlap, total int
		for i, u := range setup.queries {
			uv := setup.model.UserVec(u)
			start := time.Now()
			res, _ := idx.TopN(uv, topN)
			taDur += time.Since(start)
			start = time.Now()
			set.BruteForceTopN(uv, topN)
			bfDur += time.Since(start)

			have := make(map[[2]int32]bool, len(res))
			for _, r := range res {
				have[[2]int32{r.Event, r.Partner}] = true
			}
			for _, r := range reference[i] {
				total++
				if have[[2]int32{r.Event, r.Partner}] {
					overlap++
				}
			}
		}
		q := len(setup.queries)
		t.AddRow(fmt.Sprintf("%d%%", pct),
			fmt.Sprintf("%d", len(set.Pairs)),
			(taDur / time.Duration(q)).Round(time.Microsecond).String(),
			(bfDur / time.Duration(q)).Round(time.Microsecond).String(),
			fmt.Sprintf("%.3f", float64(overlap)/float64(total)))
	}
	return t, nil
}
