package experiments

import (
	"fmt"

	"ebsn/internal/core"
	"ebsn/internal/ebsnet"
	"ebsn/internal/eval"
	"ebsn/internal/workload"
)

// This file holds the scenario-workload tables served by the workload
// subsystem (group aggregation, predicate-constrained queries, the joint
// feed). They are not figures from the paper — they quantify the derived
// workloads EXPERIMENTS.md documents under "Scenario workloads" — so
// cmd/ebsn-bench treats them as extras: run with
// `ebsn-bench -exp group,constrained,feed`, never as part of "all".

// scenarioModel trains the GEM-A model every scenario table evaluates.
func scenarioModel(env *Env, opts Options) (*core.Model, eval.Config, error) {
	opts.fill()
	m, err := opts.TrainGEM(env.Graphs, core.GEMAConfig(), opts.budgetGEMA())
	if err != nil {
		return nil, eval.Config{}, err
	}
	cfg := opts.evalConfig()
	cfg.Ns = []int{5, 10, 20}
	return m, cfg, nil
}

// ScenarioGroup compares the two group-aggregation strategies across
// group sizes: each row is one size, with Accuracy@5/@10/@20 under mean
// and least-misery aggregation over real co-attendee groups.
func ScenarioGroup(env *Env, opts Options) (*Table, error) {
	m, cfg, err := scenarioModel(env, opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Scenario: group event recommendation (" + env.Cfg.Name + ")",
		Header: []string{"group size",
			"mean@5", "mean@10", "mean@20",
			"least-misery@5", "least-misery@10", "least-misery@20"},
	}
	for _, size := range []int{2, 3, 5} {
		row := []string{fmt.Sprintf("%d", size)}
		for _, strat := range []workload.Strategy{workload.StrategyMean, workload.StrategyLeastMisery} {
			res, err := eval.GroupEventRecommendation(m, env.Dataset, env.Split, ebsnet.Test, size, strat, cfg)
			if err != nil {
				return nil, fmt.Errorf("group size %d, %v: %w", size, strat, err)
			}
			row = append(row, Cell(res.MustAt(5)), Cell(res.MustAt(10)), Cell(res.MustAt(20)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ScenarioConstrained sweeps the filter selectivity of the constrained
// event protocol: an event-ID stride filter keeps 1/stride of the
// holdout universe, so accuracy is measured within progressively smaller
// allowed pools — the regime the predicate push-down path serves.
func ScenarioConstrained(env *Env, opts Options) (*Table, error) {
	m, cfg, err := scenarioModel(env, opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Scenario: constrained event recommendation (" + env.Cfg.Name + ")",
		Header: []string{"selectivity", "cases", "acc@5", "acc@10", "acc@20"},
	}
	for _, stride := range []int32{1, 2, 4, 10} {
		stride := stride
		allow := func(x int32) bool { return x%stride == 0 }
		res, err := eval.ConstrainedEventRecommendation(m, env.Dataset, env.Split, ebsnet.Test, allow, cfg)
		if err != nil {
			return nil, fmt.Errorf("stride %d: %w", stride, err)
		}
		t.AddRow(fmt.Sprintf("%.0f%%", 100/float64(stride)),
			fmt.Sprintf("%d", res.Cases),
			Cell(res.MustAt(5)), Cell(res.MustAt(10)), Cell(res.MustAt(20)))
	}
	return t, nil
}

// ScenarioFeed reports joint feed accuracy as the partner cutoff m
// varies: a ground-truth triple is a hit at n only when the event ranks
// within the top n AND its true partner survives the top-m join. The
// last row sets m to the user count — the partner stage cannot fail, so
// it is the event-only upper bound every m-row must stay below.
func ScenarioFeed(env *Env, opts Options) (*Table, error) {
	m, cfg, err := scenarioModel(env, opts)
	if err != nil {
		return nil, err
	}
	if len(env.TriplesTest) == 0 {
		return nil, fmt.Errorf("experiments: no ground-truth triples for the feed scenario")
	}
	t := &Table{
		Title:  "Scenario: feed (joint event+partner) recommendation (" + env.Cfg.Name + ")",
		Header: []string{"partner cutoff m", "acc@5", "acc@10", "acc@20"},
	}
	cutoffs := []int{1, 5, 10, 20}
	for _, mc := range cutoffs {
		res, err := eval.FeedRecommendation(m, m, env.Dataset, env.Split, env.TriplesTest, ebsnet.Test, mc, cfg)
		if err != nil {
			return nil, fmt.Errorf("feed m=%d: %w", mc, err)
		}
		t.AddRow(fmt.Sprintf("%d", mc), Cell(res.MustAt(5)), Cell(res.MustAt(10)), Cell(res.MustAt(20)))
	}
	// The partner stage can rank at most 1+NegativeUsers deep, so this
	// cutoff makes it un-failable even when users outnumber the budget.
	unfailable := env.Dataset.NumUsers
	if unfailable <= cfg.NegativeUsers {
		unfailable = cfg.NegativeUsers + 1
	}
	res, err := eval.FeedRecommendation(m, m, env.Dataset, env.Split, env.TriplesTest, ebsnet.Test, unfailable, cfg)
	if err != nil {
		return nil, fmt.Errorf("feed event-only bound: %w", err)
	}
	t.AddRow("event-only bound", Cell(res.MustAt(5)), Cell(res.MustAt(10)), Cell(res.MustAt(20)))
	return t, nil
}
