package experiments

import (
	"fmt"
	"time"

	"ebsn/internal/baselines"
	"ebsn/internal/core"
	"ebsn/internal/ebsnet"
	"ebsn/internal/eval"
)

// Fig3 reproduces Figure 3: cold-start event recommendation Accuracy@n
// for n ∈ Ns across the six event-recommendation models.
func Fig3(env *Env, opts Options) (*Table, error) {
	opts.fill()
	zoo, err := opts.EventModelZoo(env, env.Graphs)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: fmt.Sprintf("Figure 3: cold-start event recommendation (%s)", env.Cfg.Name)}
	t.Header = append([]string{"model"}, accuracyHeader(opts.Ns)...)
	ecfg := opts.evalConfig()
	for _, m := range zoo {
		res, err := eval.EventRecommendation(m.Scorer, env.Dataset, env.Split, ebsnet.Test, ecfg)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s: %w", m.Name, err)
		}
		t.AddRow(append([]string{m.Name}, accuracyCells(res)...)...)
	}
	return t, nil
}

// Fig4 reproduces Figure 4: joint event-partner recommendation where the
// ground-truth partners are existing friends (scenario 1).
func Fig4(env *Env, opts Options) (*Table, error) {
	return partnerFigure(env, env.Graphs, env.TriplesTest,
		fmt.Sprintf("Figure 4: event-partner recommendation, scenario 1 (%s)", env.Cfg.Name), opts)
}

// Fig5 reproduces Figure 5: the "potential friends" scenario — models are
// retrained on graphs with the ground-truth user-partner links removed.
func Fig5(env *Env, opts Options) (*Table, error) {
	return partnerFigure(env, env.GraphsS2, env.TriplesTest,
		fmt.Sprintf("Figure 5: event-partner recommendation, scenario 2 (%s)", env.Cfg.Name), opts)
}

func partnerFigure(env *Env, g *ebsnet.Graphs, triples []ebsnet.PartnerTriple, title string, opts Options) (*Table, error) {
	opts.fill()
	zoo, err := opts.PartnerModelZoo(env, g)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: title}
	t.Header = append([]string{"model"}, accuracyHeader(opts.Ns)...)
	ecfg := opts.evalConfig()
	for _, m := range zoo {
		res, err := eval.PartnerRecommendation(m.Scorer, env.Dataset, env.Split, triples, ebsnet.Test, ecfg)
		if err != nil {
			return nil, fmt.Errorf("partner figure %s: %w", m.Name, err)
		}
		t.AddRow(append([]string{m.Name}, accuracyCells(res)...)...)
	}
	return t, nil
}

// Fig6 reproduces Figure 6: Hogwild scalability. For each thread count it
// reports wall-clock training time, the speedup over one thread, and the
// resulting Accuracy@10 (which must stay stable).
func Fig6(env *Env, opts Options, threadCounts []int) (*Table, error) {
	opts.fill()
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4, 8}
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 6: scalability of asynchronous SGD (%s, N=%d)", env.Cfg.Name, opts.BaseSteps),
		Header: []string{"threads", "train_time", "speedup", "event_acc@10"},
	}
	ecfg := opts.evalConfig()
	var base time.Duration
	for _, threads := range threadCounts {
		o := opts
		o.Threads = threads
		start := time.Now()
		m, err := o.TrainGEM(env.Graphs, core.GEMAConfig(), o.budgetGEMA())
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if threads == threadCounts[0] {
			base = elapsed
		}
		res, err := eval.EventRecommendation(m, env.Dataset, env.Split, ebsnet.Test, ecfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", threads),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(base)/float64(elapsed)),
			Cell(res.MustAt(10)),
		)
	}
	return t, nil
}

func accuracyHeader(ns []int) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = fmt.Sprintf("acc@%d", n)
	}
	return out
}

func accuracyCells(res eval.Result) []string {
	out := make([]string, len(res.Accuracy))
	for i, a := range res.Accuracy {
		out[i] = Cell(a)
	}
	return out
}

// Tab1 mirrors the paper's Table I: the basic statistics of the dataset
// under evaluation, extended with the distributional measures that
// determine how hard the recommendation problem is.
func Tab1(env *Env) *Table {
	d := ebsnet.Describe(env.Dataset)
	t := &Table{
		Title:  "Table I: basic statistics (" + env.Cfg.Name + ", after min-5-events filter)",
		Header: []string{"statistic", "value"},
	}
	t.AddRow("# of users", fmt.Sprintf("%d", d.Stats.Users))
	t.AddRow("# of events", fmt.Sprintf("%d", d.Stats.Events))
	t.AddRow("# of venues", fmt.Sprintf("%d", d.Stats.Venues))
	t.AddRow("# of historical attendances", fmt.Sprintf("%d", d.Stats.Attendances))
	t.AddRow("# of friendship links", fmt.Sprintf("%d", d.Stats.Friendships))
	t.AddRow("events per user (mean/median/max)", fmt.Sprintf("%.1f / %d / %d", d.UserEventsMean, d.UserEventsMedian, d.UserEventsMax))
	t.AddRow("attendees per event (mean/median/max)", fmt.Sprintf("%.1f / %d / %d", d.EventUsersMean, d.EventUsersMedian, d.EventUsersMax))
	t.AddRow("event-popularity Gini", fmt.Sprintf("%.3f", d.EventUsersGini))
	t.AddRow("friends per user (mean/median/max)", fmt.Sprintf("%.1f / %d / %d", d.FriendsMean, d.FriendsMedian, d.FriendsMax))
	t.AddRow("event time span", fmt.Sprintf("%s .. %s", d.FirstEvent.Format("2006-01-02"), d.LastEvent.Format("2006-01-02")))
	t.AddRow("test (cold) events", fmt.Sprintf("%d", len(env.Split.TestEvents)))
	t.AddRow("partner ground-truth triples", fmt.Sprintf("%d", len(env.TriplesTest)))
	return t
}

// Fig3Extended augments Figure 3 with models beyond the paper's
// comparison set: DeepWalk (the homogeneous-embedding family of the
// related work, demonstrating the heterogeneity claim of Section VI-C)
// and the popularity/random reference scorers that bracket the task —
// popularity is structurally zero on cold events, random sits at
// n/(negatives+1).
func Fig3Extended(env *Env, opts Options) (*Table, error) {
	opts.fill()
	zoo, err := opts.EventModelZoo(env, env.Graphs)
	if err != nil {
		return nil, err
	}
	dwCfg := baselines.DefaultDeepWalkConfig()
	dwCfg.K = opts.K
	dwCfg.Seed = opts.Seed
	// Scale walk volume to the shared budget: one skip-gram pair is
	// roughly one gradient step.
	pairsPerWalk := int64(dwCfg.WalkLength * 2 * dwCfg.Window)
	walks := opts.BaseSteps / max64(pairsPerWalk*int64(env.Dataset.NumUsers+env.Dataset.NumEvents()), 1)
	dwCfg.WalksPerNode = int(max64(walks, 2))
	dw, err := baselines.NewDeepWalk(env.Graphs, dwCfg)
	if err != nil {
		return nil, err
	}
	zoo = append(zoo,
		NamedScorer{"DeepWalk", dw},
		NamedScorer{"Popularity", baselines.NewPopularity(env.Dataset, env.Split)},
		NamedScorer{"Random", baselines.Random{Salt: uint32(opts.Seed)}},
	)

	t := &Table{Title: fmt.Sprintf("Figure 3 (extended): cold-start event recommendation (%s)", env.Cfg.Name)}
	t.Header = append([]string{"model"}, accuracyHeader(opts.Ns)...)
	ecfg := opts.evalConfig()
	for _, m := range zoo {
		res, err := eval.EventRecommendation(m.Scorer, env.Dataset, env.Split, ebsnet.Test, ecfg)
		if err != nil {
			return nil, fmt.Errorf("fig3x %s: %w", m.Name, err)
		}
		t.AddRow(append([]string{m.Name}, accuracyCells(res)...)...)
	}
	return t, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
