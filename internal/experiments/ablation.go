package experiments

import (
	"fmt"

	"ebsn/internal/core"
	"ebsn/internal/ebsnet"
	"ebsn/internal/eval"
)

// Ablations isolates each design choice the paper argues for, holding
// everything else at the GEM-A defaults and retraining per row:
//
//   - bidirectional vs unidirectional negative sampling (Eqn. 4),
//   - edge-proportional vs uniform graph selection (Algorithm 2),
//   - the noise sampler family (uniform / degree / adaptive),
//   - the rectifier projection (the paper's literal non-negativity,
//     which DESIGN.md §8.1 shows collapses the objective).
//
// Each row reports cold-start and joint Accuracy@10 at the shared budget.
func Ablations(env *Env, opts Options) (*Table, error) {
	opts.fill()
	rows := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"GEM-A (reference)", func(c *core.Config) {}},
		{"unidirectional negatives", func(c *core.Config) { c.Bidirectional = false }},
		{"uniform graph selection", func(c *core.Config) { c.GraphSampling = core.GraphUniform }},
		{"uniform noise sampler", func(c *core.Config) { c.Sampler = core.SamplerUniform }},
		{"degree noise sampler", func(c *core.Config) { c.Sampler = core.SamplerDegree }},
		{"rectifier projection ON", func(c *core.Config) { c.NonNegative = true }},
		{"no observed-edge rejection", func(c *core.Config) { c.RejectObserved = false }},
	}

	t := &Table{
		Title:  fmt.Sprintf("Ablations: one design choice flipped per row (%s, N=%d)", env.Cfg.Name, opts.BaseSteps),
		Header: []string{"variant", "event acc@10", "partner acc@10"},
	}
	ecfg := opts.evalConfig()
	ecfg.Ns = []int{10}
	for _, row := range rows {
		preset := core.GEMAConfig()
		row.mutate(&preset)
		m, err := opts.TrainGEM(env.Graphs, preset, opts.BaseSteps)
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", row.name, err)
		}
		res, err := eval.EventRecommendation(m, env.Dataset, env.Split, ebsnet.Test, ecfg)
		if err != nil {
			return nil, err
		}
		pres, err := eval.PartnerRecommendation(m, env.Dataset, env.Split, env.TriplesTest, ebsnet.Test, ecfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.name, Cell(res.MustAt(10)), Cell(pres.MustAt(10)))
	}
	return t, nil
}
