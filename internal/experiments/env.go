// Package experiments regenerates every table and figure of the paper's
// evaluation section (Figures 3-7, Tables II-VI) on the synthetic Douban
// substitute. Each experiment function returns a Table whose rows mirror
// the paper's layout; cmd/ebsn-bench prints them and EXPERIMENTS.md
// records paper-vs-measured values.
package experiments

import (
	"fmt"

	"ebsn/internal/datagen"
	"ebsn/internal/ebsnet"
	"ebsn/internal/eval"
)

// Env is a prepared experimental environment: one synthetic city with its
// chronological split, relation graphs for both partner scenarios, and
// ground-truth triple sets.
type Env struct {
	Cfg     datagen.Config
	Dataset *ebsnet.Dataset
	Split   *ebsnet.Split

	// Graphs is the scenario-1 graph set (full friendship graph).
	Graphs *ebsnet.Graphs
	// GraphsS2 is the scenario-2 graph set: ground-truth user-partner
	// links removed from the user-user graph before training ("potential
	// friends").
	GraphsS2 *ebsnet.Graphs

	// TriplesTest is the event-partner ground truth Y on test events;
	// TriplesVal the same on validation events (hyper-parameter tuning).
	TriplesTest []ebsnet.PartnerTriple
	TriplesVal  []ebsnet.PartnerTriple
}

// NewEnv generates the dataset, applies the paper's minimum-attendance
// filter, splits chronologically, and builds both graph sets.
func NewEnv(cfg datagen.Config) (*Env, error) {
	raw, err := datagen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	d, err := raw.FilterMinEvents(5)
	if err != nil {
		return nil, fmt.Errorf("experiments: min-events filter: %w", err)
	}
	s, err := ebsnet.ChronologicalSplit(d, ebsnet.DefaultSplitConfig())
	if err != nil {
		return nil, err
	}
	gcfg := ebsnet.DefaultGraphsConfig()
	g, err := ebsnet.BuildGraphs(d, s, gcfg)
	if err != nil {
		return nil, err
	}
	env := &Env{Cfg: cfg, Dataset: d, Split: s, Graphs: g}
	env.TriplesTest = ebsnet.PartnerGroundTruth(d, s, ebsnet.Test)
	env.TriplesVal = ebsnet.PartnerGroundTruth(d, s, ebsnet.Validation)

	// Scenario 2: remove every ground-truth user-partner link, then
	// rebuild the user-user graph.
	gcfg2 := gcfg
	gcfg2.Friendships = ebsnet.RemoveLinks(d.Friendships, env.TriplesTest)
	g2, err := ebsnet.BuildGraphs(d, s, gcfg2)
	if err != nil {
		return nil, err
	}
	env.GraphsS2 = g2
	return env, nil
}

// Options are shared experiment knobs.
type Options struct {
	// K is the embedding dimension (paper default 60).
	K int
	// BaseSteps is the GEM training budget N; baselines and PTE scale
	// from it (PTE needs roughly 3× to converge, mirroring Table II).
	BaseSteps int64
	// Threads for Hogwild training.
	Threads int
	// EvalCases caps evaluation cases per protocol run (0 = all).
	EvalCases int
	// Ns are the cutoffs reported (paper: 1, 5, 10, 15, 20).
	Ns   []int
	Seed uint64
}

// DefaultOptions is tuned for the "small" synthetic city: the full
// harness completes in minutes on a laptop.
func DefaultOptions() Options {
	return Options{
		K:         60,
		BaseSteps: 1_200_000,
		Threads:   8,
		EvalCases: 2000,
		Ns:        []int{1, 5, 10, 15, 20},
		Seed:      7,
	}
}

func (o *Options) fill() {
	if o.K == 0 {
		o.K = 60
	}
	if o.BaseSteps == 0 {
		o.BaseSteps = 1_200_000
	}
	if o.Threads == 0 {
		o.Threads = 8
	}
	if len(o.Ns) == 0 {
		o.Ns = []int{1, 5, 10, 15, 20}
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
}

// evalConfig builds the protocol configuration for these options.
func (o Options) evalConfig() eval.Config {
	c := eval.DefaultConfig()
	c.Ns = o.Ns
	c.MaxCases = o.EvalCases
	c.Seed = o.Seed ^ 0x5eed
	return c
}
