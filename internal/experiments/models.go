package experiments

import (
	"fmt"

	"ebsn/internal/baselines"
	"ebsn/internal/core"
	"ebsn/internal/ebsnet"
	"ebsn/internal/eval"
)

// Scorer is what every trained model exposes to the protocols.
type Scorer interface {
	eval.EventScorer
	eval.TripleScorer
}

// NamedScorer pairs a model label with its trained scorer.
type NamedScorer struct {
	Name   string
	Scorer Scorer
}

// gemConfig assembles a core.Config for the given preset and budget.
func (o Options) gemConfig(preset core.Config, budget int64) core.Config {
	cfg := preset
	cfg.K = o.K
	cfg.Threads = o.Threads
	cfg.Seed = o.Seed
	cfg.TotalSteps = budget
	return cfg
}

// TrainGEM trains one GEM variant on the given graphs for the given
// budget with the linear decay schedule.
func (o Options) TrainGEM(g *ebsnet.Graphs, preset core.Config, budget int64) (*core.Model, error) {
	m, err := core.NewModel(g, o.gemConfig(preset, budget))
	if err != nil {
		return nil, err
	}
	m.TrainSteps(budget)
	return m, nil
}

// Budgets per model family, mirroring the paper's converged sample counts
// relative to GEM-A (Table II: GEM-A 2M, GEM-P 4M, PTE 10M).
func (o Options) budgetGEMA() int64 { return o.BaseSteps }
func (o Options) budgetGEMP() int64 { return o.BaseSteps * 2 }
func (o Options) budgetPTE() int64  { return o.BaseSteps * 3 }

// EventModelZoo trains the six models compared in Figure 3 (cold-start
// event recommendation) on the given graph set, in the paper's legend
// order.
func (o Options) EventModelZoo(env *Env, g *ebsnet.Graphs) ([]NamedScorer, error) {
	o.fill()
	var out []NamedScorer

	gemA, err := o.TrainGEM(g, core.GEMAConfig(), o.budgetGEMA())
	if err != nil {
		return nil, fmt.Errorf("experiments: GEM-A: %w", err)
	}
	out = append(out, NamedScorer{"GEM-A", gemA})

	gemP, err := o.TrainGEM(g, core.GEMPConfig(), o.budgetGEMP())
	if err != nil {
		return nil, fmt.Errorf("experiments: GEM-P: %w", err)
	}
	out = append(out, NamedScorer{"GEM-P", gemP})

	pte, err := o.TrainGEM(g, core.PTEConfig(), o.budgetPTE())
	if err != nil {
		return nil, fmt.Errorf("experiments: PTE: %w", err)
	}
	out = append(out, NamedScorer{"PTE", pte})

	cbpfCfg := baselines.DefaultCBPFConfig()
	cbpfCfg.K = o.K
	cbpfCfg.Seed = o.Seed
	// CBPF steps touch whole documents; cap so city scale stays tractable.
	cbpfCfg.Steps = min(o.BaseSteps/4, 2_000_000)
	cbpf, err := baselines.NewCBPF(g, cbpfCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: CBPF: %w", err)
	}
	out = append(out, NamedScorer{"CBPF", cbpf})

	perCfg := baselines.DefaultPERConfig()
	perCfg.Seed = o.Seed
	perCfg.FactorSteps = min(o.BaseSteps*2, 8_000_000)
	perCfg.Steps = min(o.BaseSteps/4, 1_000_000)
	per, err := baselines.NewPER(env.Dataset, env.Split, g, perCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: PER: %w", err)
	}
	out = append(out, NamedScorer{"PER", per})

	pcmfCfg := baselines.DefaultPCMFConfig()
	pcmfCfg.K = o.K
	pcmfCfg.Seed = o.Seed
	pcmfCfg.Steps = o.BaseSteps * 2
	pcmf, err := baselines.NewPCMF(g, pcmfCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: PCMF: %w", err)
	}
	out = append(out, NamedScorer{"PCMF", pcmf})

	return out, nil
}

// PartnerModelZoo is the Figure 4/5 model set: the event zoo plus
// CFAPR-E, which reuses the zoo's GEM-A as its event scorer exactly as
// the paper does.
func (o Options) PartnerModelZoo(env *Env, g *ebsnet.Graphs) ([]NamedScorer, error) {
	zoo, err := o.EventModelZoo(env, g)
	if err != nil {
		return nil, err
	}
	cfapr, err := baselines.NewCFAPRE(env.Dataset, env.Split, zoo[0].Scorer)
	if err != nil {
		return nil, err
	}
	return append(zoo, NamedScorer{"CFAPR-E", cfapr}), nil
}
