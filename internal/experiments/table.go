package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Table is a printable experiment result mirroring one of the paper's
// tables or figure series.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Cell formats a float at the paper's three-decimal precision.
func Cell(v float64) string { return fmt.Sprintf("%.3f", v) }

// WriteTSV saves the table as a tab-separated file (header + rows) named
// after the slug, for plotting tools. Returns the written path.
func (t *Table) WriteTSV(dir, slug string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("experiments: %w", err)
	}
	path := filepath.Join(dir, slug+".tsv")
	var b strings.Builder
	b.WriteString("# " + t.Title + "\n")
	b.WriteString(strings.Join(t.Header, "\t") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t") + "\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", fmt.Errorf("experiments: %w", err)
	}
	return path, nil
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}
