package ebsnet

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ebsn/internal/geo"
)

// Dataset directory layout: five CSV files, all with header rows. The
// format round-trips exactly (word order and timestamps included) so
// generated benchmarks are shareable and diffable.
const (
	metaFile        = "meta.csv"
	venuesFile      = "venues.csv"
	eventsFile      = "events.csv"
	attendanceFile  = "attendance.csv"
	friendshipsFile = "friendships.csv"
)

// ExportCSV writes the dataset into dir, creating it if needed.
func ExportCSV(d *Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ebsnet: export: %w", err)
	}
	write := func(name string, header []string, rows func(w *csv.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("ebsnet: export %s: %w", name, err)
		}
		defer f.Close()
		w := csv.NewWriter(f)
		if err := w.Write(header); err != nil {
			return err
		}
		if err := rows(w); err != nil {
			return fmt.Errorf("ebsnet: export %s: %w", name, err)
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return fmt.Errorf("ebsnet: export %s: %w", name, err)
		}
		return f.Close()
	}

	if err := write(metaFile, []string{"name", "num_users"}, func(w *csv.Writer) error {
		return w.Write([]string{d.Name, strconv.Itoa(d.NumUsers)})
	}); err != nil {
		return err
	}
	if err := write(venuesFile, []string{"id", "lat", "lng"}, func(w *csv.Writer) error {
		for i, v := range d.Venues {
			if err := w.Write([]string{
				strconv.Itoa(i),
				strconv.FormatFloat(v.Lat, 'f', -1, 64),
				strconv.FormatFloat(v.Lng, 'f', -1, 64),
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := write(eventsFile, []string{"id", "venue", "start_unix", "words"}, func(w *csv.Writer) error {
		for i, e := range d.Events {
			if err := w.Write([]string{
				strconv.Itoa(i),
				strconv.Itoa(int(e.Venue)),
				strconv.FormatInt(e.Start.Unix(), 10),
				strings.Join(e.Words, " "),
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := write(attendanceFile, []string{"user", "event"}, func(w *csv.Writer) error {
		for _, a := range d.Attendance {
			if err := w.Write([]string{strconv.Itoa(int(a[0])), strconv.Itoa(int(a[1]))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return write(friendshipsFile, []string{"user_a", "user_b"}, func(w *csv.Writer) error {
		for _, f := range d.Friendships {
			if err := w.Write([]string{strconv.Itoa(int(f[0])), strconv.Itoa(int(f[1]))}); err != nil {
				return err
			}
		}
		return nil
	})
}

// ImportCSV reads a dataset directory written by ExportCSV, finalizing
// the result.
func ImportCSV(dir string) (*Dataset, error) {
	d := &Dataset{}

	if err := readCSV(filepath.Join(dir, metaFile), 2, func(rec []string) error {
		d.Name = rec[0]
		n, err := strconv.Atoi(rec[1])
		if err != nil {
			return fmt.Errorf("bad num_users %q: %w", rec[1], err)
		}
		d.NumUsers = n
		return nil
	}); err != nil {
		return nil, err
	}

	if err := readCSV(filepath.Join(dir, venuesFile), 3, func(rec []string) error {
		lat, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return fmt.Errorf("bad lat %q: %w", rec[1], err)
		}
		lng, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return fmt.Errorf("bad lng %q: %w", rec[2], err)
		}
		d.Venues = append(d.Venues, geo.Point{Lat: lat, Lng: lng})
		return nil
	}); err != nil {
		return nil, err
	}

	if err := readCSV(filepath.Join(dir, eventsFile), 4, func(rec []string) error {
		venue, err := strconv.Atoi(rec[1])
		if err != nil {
			return fmt.Errorf("bad venue %q: %w", rec[1], err)
		}
		start, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad start_unix %q: %w", rec[2], err)
		}
		var words []string
		if rec[3] != "" {
			words = strings.Split(rec[3], " ")
		}
		d.Events = append(d.Events, Event{
			Venue: int32(venue),
			Start: time.Unix(start, 0).UTC(),
			Words: words,
		})
		return nil
	}); err != nil {
		return nil, err
	}

	if err := readCSV(filepath.Join(dir, attendanceFile), 2, func(rec []string) error {
		u, err := strconv.Atoi(rec[0])
		if err != nil {
			return fmt.Errorf("bad user %q: %w", rec[0], err)
		}
		x, err := strconv.Atoi(rec[1])
		if err != nil {
			return fmt.Errorf("bad event %q: %w", rec[1], err)
		}
		d.Attendance = append(d.Attendance, [2]int32{int32(u), int32(x)})
		return nil
	}); err != nil {
		return nil, err
	}

	if err := readCSV(filepath.Join(dir, friendshipsFile), 2, func(rec []string) error {
		a, err := strconv.Atoi(rec[0])
		if err != nil {
			return fmt.Errorf("bad user_a %q: %w", rec[0], err)
		}
		b, err := strconv.Atoi(rec[1])
		if err != nil {
			return fmt.Errorf("bad user_b %q: %w", rec[1], err)
		}
		d.Friendships = append(d.Friendships, [2]int32{int32(a), int32(b)})
		return nil
	}); err != nil {
		return nil, err
	}

	if err := d.Finalize(); err != nil {
		return nil, err
	}
	return d, nil
}

// readCSV streams a headered CSV file, validating the column count and
// reporting errors with file/row context.
func readCSV(path string, cols int, row func(rec []string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("ebsnet: import: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = cols
	r.ReuseRecord = true
	if _, err := r.Read(); err != nil {
		return fmt.Errorf("ebsnet: import %s: missing header: %w", filepath.Base(path), err)
	}
	line := 1
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		line++
		if err != nil {
			return fmt.Errorf("ebsnet: import %s line %d: %w", filepath.Base(path), line, err)
		}
		if err := row(rec); err != nil {
			return fmt.Errorf("ebsnet: import %s line %d: %w", filepath.Base(path), line, err)
		}
	}
}
