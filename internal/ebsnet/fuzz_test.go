package ebsnet

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"ebsn/internal/geo"
)

// FuzzImportCSV feeds corrupted bytes into each dataset file and asserts
// the importer either errors cleanly or returns a finalized dataset — it
// must never panic or accept inconsistent data silently.
func FuzzImportCSV(f *testing.F) {
	f.Add("user,event\n0,0\n", 3)
	f.Add("", 0)
	f.Add("a,b,c\n1,2,3\n\xff\xfe", 1)
	f.Add("user,event\n99999,0\n", 3)
	f.Fuzz(func(t *testing.T, payload string, which int) {
		base := &Dataset{
			Name:       "fuzz",
			NumUsers:   2,
			Venues:     fixtureVenues(),
			Events:     fixtureEvents(),
			Attendance: [][2]int32{{0, 0}, {1, 0}},
		}
		if err := base.Finalize(); err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := ExportCSV(base, dir); err != nil {
			t.Fatal(err)
		}
		files := []string{metaFile, venuesFile, eventsFile, attendanceFile, friendshipsFile}
		target := files[((which%len(files))+len(files))%len(files)]
		if err := os.WriteFile(filepath.Join(dir, target), []byte(payload), 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := ImportCSV(dir)
		if err != nil {
			return // clean rejection
		}
		// Accepted: the dataset must be internally consistent.
		for _, a := range d.Attendance {
			if int(a[0]) >= d.NumUsers || int(a[1]) >= len(d.Events) {
				t.Fatalf("accepted inconsistent attendance %v", a)
			}
		}
	})
}

// fixtureVenues and fixtureEvents provide minimal valid building blocks
// for the fuzz harness.
func fixtureVenues() []geo.Point {
	return []geo.Point{{Lat: 39.9, Lng: 116.4}}
}

func fixtureEvents() []Event {
	return []Event{{Venue: 0, Start: time.Date(2012, 1, 1, 10, 0, 0, 0, time.UTC), Words: []string{"w"}}}
}
