package ebsnet

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Description summarizes a dataset's distributional shape — the numbers
// one checks against Table I and against known EBSN regularities (skewed
// popularity, heavy-tailed user activity) before trusting experiments run
// on it.
type Description struct {
	Stats Stats

	// User activity (events attended per user).
	UserEventsMean   float64
	UserEventsMedian int
	UserEventsMax    int
	UserEventsGini   float64

	// Event popularity (attendees per event).
	EventUsersMean   float64
	EventUsersMedian int
	EventUsersMax    int
	EventUsersGini   float64

	// Social degree.
	FriendsMean   float64
	FriendsMedian int
	FriendsMax    int

	// Time range covered by events.
	FirstEvent time.Time
	LastEvent  time.Time
}

// Describe computes the summary. The dataset must be finalized.
func Describe(d *Dataset) Description {
	d.mustFinal()
	desc := Description{Stats: d.Stats()}

	userCounts := make([]int, d.NumUsers)
	for u := range userCounts {
		userCounts[u] = len(d.userEvents[u])
	}
	desc.UserEventsMean, desc.UserEventsMedian, desc.UserEventsMax = distStats(userCounts)
	desc.UserEventsGini = gini(userCounts)

	eventCounts := make([]int, len(d.Events))
	for x := range eventCounts {
		eventCounts[x] = len(d.eventUsers[x])
	}
	desc.EventUsersMean, desc.EventUsersMedian, desc.EventUsersMax = distStats(eventCounts)
	desc.EventUsersGini = gini(eventCounts)

	friendCounts := make([]int, d.NumUsers)
	for u := range friendCounts {
		friendCounts[u] = len(d.friends[u])
	}
	desc.FriendsMean, desc.FriendsMedian, desc.FriendsMax = distStats(friendCounts)

	desc.FirstEvent = d.Events[0].Start
	desc.LastEvent = d.Events[0].Start
	for _, e := range d.Events {
		if e.Start.Before(desc.FirstEvent) {
			desc.FirstEvent = e.Start
		}
		if e.Start.After(desc.LastEvent) {
			desc.LastEvent = e.Start
		}
	}
	return desc
}

func distStats(counts []int) (mean float64, median, max int) {
	if len(counts) == 0 {
		return 0, 0, 0
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	var sum int
	for _, c := range sorted {
		sum += c
	}
	return float64(sum) / float64(len(sorted)), sorted[len(sorted)/2], sorted[len(sorted)-1]
}

// gini computes the Gini coefficient of a non-negative count
// distribution: 0 is perfect equality, values near 1 mean a tiny head
// holds most of the mass. Real event-popularity distributions sit around
// 0.5–0.8.
func gini(counts []int) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	var cum, total float64
	for i, c := range sorted {
		cum += float64(c) * float64(2*(i+1)-n-1)
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	return cum / (float64(n) * total)
}

// String renders the description as an aligned report.
func (d Description) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", d.Stats)
	fmt.Fprintf(&b, "  events per user:    mean %.1f  median %d  max %d  gini %.3f\n",
		d.UserEventsMean, d.UserEventsMedian, d.UserEventsMax, d.UserEventsGini)
	fmt.Fprintf(&b, "  attendees per event: mean %.1f  median %d  max %d  gini %.3f\n",
		d.EventUsersMean, d.EventUsersMedian, d.EventUsersMax, d.EventUsersGini)
	fmt.Fprintf(&b, "  friends per user:   mean %.1f  median %d  max %d\n",
		d.FriendsMean, d.FriendsMedian, d.FriendsMax)
	fmt.Fprintf(&b, "  event time range:   %s .. %s (%.0f days)\n",
		d.FirstEvent.Format("2006-01-02"), d.LastEvent.Format("2006-01-02"),
		math.Round(d.LastEvent.Sub(d.FirstEvent).Hours()/24))
	return b.String()
}
