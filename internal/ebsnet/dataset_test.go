package ebsnet

import (
	"strings"
	"testing"
	"time"

	"ebsn/internal/geo"
)

// fixture builds a small hand-checked dataset:
//
//	4 users, 6 events at 3 venues, events evenly spaced over 6 days.
//	Attendance: u0:{e0,e1,e2,e4} u1:{e0,e1,e4,e5} u2:{e2,e3,e5} u3:{e3}
//	Friendships: (0,1), (1,2)
func fixture(t testing.TB) *Dataset {
	t.Helper()
	base := time.Date(2012, 3, 1, 19, 0, 0, 0, time.UTC)
	d := &Dataset{
		Name:     "fixture",
		NumUsers: 4,
		Venues: []geo.Point{
			{Lat: 39.90, Lng: 116.40},
			{Lat: 39.91, Lng: 116.41},
			{Lat: 39.99, Lng: 116.31},
		},
		Events: []Event{
			{Venue: 0, Start: base, Words: []string{"jazz", "night", "music"}},
			{Venue: 1, Start: base.AddDate(0, 0, 1), Words: []string{"rock", "music"}},
			{Venue: 0, Start: base.AddDate(0, 0, 2), Words: []string{"jazz", "festival"}},
			{Venue: 2, Start: base.AddDate(0, 0, 3), Words: []string{"poetry", "reading"}},
			{Venue: 1, Start: base.AddDate(0, 0, 4), Words: []string{"music", "festival"}},
			{Venue: 2, Start: base.AddDate(0, 0, 5), Words: []string{"jazz", "music", "night"}},
		},
		Attendance: [][2]int32{
			{0, 0}, {0, 1}, {0, 2}, {0, 4},
			{1, 0}, {1, 1}, {1, 4}, {1, 5},
			{2, 2}, {2, 3}, {2, 5},
			{3, 3},
		},
		Friendships: [][2]int32{{0, 1}, {1, 2}},
	}
	if err := d.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return d
}

func TestFinalizeIndexes(t *testing.T) {
	d := fixture(t)
	if got := d.UserEvents(0); len(got) != 4 || got[0] != 0 || got[3] != 4 {
		t.Errorf("UserEvents(0) = %v", got)
	}
	if got := d.EventUsers(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("EventUsers(0) = %v", got)
	}
	if got := d.Friends(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Friends(1) = %v", got)
	}
}

func TestAreFriendsAndAttended(t *testing.T) {
	d := fixture(t)
	if !d.AreFriends(0, 1) || !d.AreFriends(1, 0) {
		t.Error("friendship (0,1) not symmetric")
	}
	if d.AreFriends(0, 2) {
		t.Error("phantom friendship (0,2)")
	}
	if !d.Attended(2, 3) {
		t.Error("Attended(2,3) = false")
	}
	if d.Attended(3, 0) {
		t.Error("Attended(3,0) = true")
	}
}

func TestCommonEvents(t *testing.T) {
	d := fixture(t)
	if got := d.CommonEvents(0, 1, nil); got != 3 { // e0, e1, e4
		t.Errorf("CommonEvents(0,1) = %d, want 3", got)
	}
	if got := d.CommonEvents(0, 3, nil); got != 0 {
		t.Errorf("CommonEvents(0,3) = %d, want 0", got)
	}
	onlyEarly := func(x int32) bool { return x < 2 }
	if got := d.CommonEvents(0, 1, onlyEarly); got != 2 {
		t.Errorf("restricted CommonEvents(0,1) = %d, want 2", got)
	}
}

func TestValidationErrors(t *testing.T) {
	base := fixture(t)
	cases := map[string]func(d *Dataset){
		"noUsers":     func(d *Dataset) { d.NumUsers = 0 },
		"badVenue":    func(d *Dataset) { d.Events[0].Venue = 99 },
		"zeroStart":   func(d *Dataset) { d.Events[0].Start = time.Time{} },
		"badAttUser":  func(d *Dataset) { d.Attendance[0][0] = 99 },
		"badAttEvent": func(d *Dataset) { d.Attendance[0][1] = 99 },
		"badFriend":   func(d *Dataset) { d.Friendships[0][0] = -1 },
		"selfFriend":  func(d *Dataset) { d.Friendships[0] = [2]int32{2, 2} },
	}
	for name, mutate := range cases {
		d := &Dataset{
			Name:        base.Name,
			NumUsers:    base.NumUsers,
			Venues:      append([]geo.Point(nil), base.Venues...),
			Events:      append([]Event(nil), base.Events...),
			Attendance:  append([][2]int32(nil), base.Attendance...),
			Friendships: append([][2]int32(nil), base.Friendships...),
		}
		mutate(d)
		if err := d.Finalize(); err == nil {
			t.Errorf("%s: Finalize accepted invalid dataset", name)
		}
	}
}

func TestUseBeforeFinalizePanics(t *testing.T) {
	d := &Dataset{NumUsers: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unfinalized use")
		}
	}()
	d.UserEvents(0)
}

func TestFilterMinEvents(t *testing.T) {
	d := fixture(t)
	// min 3 events keeps u0 (4), u1 (4), u2 (3); drops u3 (1).
	f, err := d.FilterMinEvents(3)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumUsers != 3 {
		t.Fatalf("filtered users = %d, want 3", f.NumUsers)
	}
	if len(f.Attendance) != 11 {
		t.Errorf("filtered attendance = %d, want 11", len(f.Attendance))
	}
	// All friendships survive: they are among u0, u1, u2.
	if len(f.Friendships) != 2 {
		t.Errorf("filtered friendships = %d, want 2", len(f.Friendships))
	}
	// Event 3 now has only user u2 (renumbered).
	if got := f.EventUsers(3); len(got) != 1 {
		t.Errorf("EventUsers(3) after filter = %v", got)
	}
}

func TestFilterDropsOrphanFriendships(t *testing.T) {
	d := fixture(t)
	d.Friendships = append(d.Friendships, [2]int32{2, 3})
	if err := d.Finalize(); err != nil {
		t.Fatal(err)
	}
	f, err := d.FilterMinEvents(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Friendships) != 2 {
		t.Errorf("friendship with dropped user survived: %v", f.Friendships)
	}
}

func TestStats(t *testing.T) {
	d := fixture(t)
	s := d.Stats()
	if s.Users != 4 || s.Events != 6 || s.Venues != 3 || s.Attendances != 12 || s.Friendships != 2 {
		t.Errorf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "users=4") {
		t.Errorf("Stats.String() = %q", s.String())
	}
}
