package ebsnet

import (
	"strings"
	"testing"
)

func TestDescribeFixture(t *testing.T) {
	d := fixture(t)
	desc := Describe(d)
	// Attendance counts per user: 4, 4, 3, 1 → mean 3, median 4, max 4.
	if desc.UserEventsMean != 3 {
		t.Errorf("user events mean = %v, want 3", desc.UserEventsMean)
	}
	if desc.UserEventsMax != 4 {
		t.Errorf("user events max = %v", desc.UserEventsMax)
	}
	// Attendees per event: 2,2,2,2,2,2 → mean 2, gini 0.
	if desc.EventUsersMean != 2 {
		t.Errorf("event users mean = %v, want 2", desc.EventUsersMean)
	}
	if desc.EventUsersGini != 0 {
		t.Errorf("uniform popularity should have gini 0, got %v", desc.EventUsersGini)
	}
	if desc.FirstEvent.After(desc.LastEvent) {
		t.Error("time range inverted")
	}
	out := desc.String()
	for _, want := range []string{"events per user", "gini", "time range"} {
		if !strings.Contains(out, want) {
			t.Errorf("description missing %q:\n%s", want, out)
		}
	}
}

func TestGini(t *testing.T) {
	if g := gini([]int{5, 5, 5, 5}); g != 0 {
		t.Errorf("equal distribution gini = %v", g)
	}
	// All mass on one element of n: gini = (n-1)/n.
	if g := gini([]int{0, 0, 0, 10}); g < 0.74 || g > 0.76 {
		t.Errorf("concentrated gini = %v, want 0.75", g)
	}
	if g := gini(nil); g != 0 {
		t.Errorf("empty gini = %v", g)
	}
	if g := gini([]int{0, 0}); g != 0 {
		t.Errorf("all-zero gini = %v", g)
	}
	// Monotonicity: more skew, higher gini.
	if gini([]int{1, 1, 1, 7}) <= gini([]int{2, 2, 3, 3}) {
		t.Error("gini not increasing with skew")
	}
}

func TestDistStats(t *testing.T) {
	mean, median, max := distStats([]int{1, 3, 5})
	if mean != 3 || median != 3 || max != 5 {
		t.Errorf("distStats = %v %v %v", mean, median, max)
	}
	mean, median, max = distStats(nil)
	if mean != 0 || median != 0 || max != 0 {
		t.Error("empty distStats should be zeros")
	}
}
