package ebsnet

import (
	"testing"

	"ebsn/internal/geo"
	"ebsn/internal/text"
	"ebsn/internal/timeslot"
)

func buildFixtureGraphs(t *testing.T) (*Dataset, *Split, *Graphs) {
	t.Helper()
	d := fixture(t)
	s, err := ChronologicalSplit(d, SplitConfig{TrainFrac: 0.7, ValidationFracOfHoldout: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := GraphsConfig{
		DBSCAN:        geo.DBSCANConfig{EpsKm: 3, MinPts: 2},
		NoiseAttachKm: 5,
		Vocab:         text.VocabConfig{MinDocFreq: 1},
	}
	g, err := BuildGraphs(d, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, s, g
}

func TestBuildGraphsUserEventTrainOnly(t *testing.T) {
	d, s, g := buildFixtureGraphs(t)
	// Training events are {0,1,2,3} with 8 attendance edges
	// (u0:{0,1,2}, u1:{0,1}, u2:{2,3}, u3:{3}).
	if g.UserEvent.NumEdges() != 8 {
		t.Fatalf("user-event edges = %d, want 8", g.UserEvent.NumEdges())
	}
	for _, e := range g.UserEvent.Edges() {
		if !s.InTrain(e.B) {
			t.Errorf("user-event edge to holdout event %d", e.B)
		}
		if !d.Attended(e.A, e.B) {
			t.Errorf("phantom attendance edge (%d,%d)", e.A, e.B)
		}
	}
}

func TestBuildGraphsEventLocationCoversAllEvents(t *testing.T) {
	d, _, g := buildFixtureGraphs(t)
	if g.EventLocation.NumEdges() != d.NumEvents() {
		t.Fatalf("event-location edges = %d, want %d", g.EventLocation.NumEdges(), d.NumEvents())
	}
	if len(g.EventRegion) != d.NumEvents() {
		t.Fatal("EventRegion length mismatch")
	}
	// Venues 0 and 1 are ~1.4 km apart, venue 2 ~12 km away: expect
	// events at venues 0/1 to share a region distinct from venue 2's.
	r01 := g.EventRegion[0]
	if g.EventRegion[1] != r01 || g.EventRegion[2] != r01 || g.EventRegion[4] != r01 {
		t.Errorf("downtown events split across regions: %v", g.EventRegion)
	}
	if g.EventRegion[3] == r01 {
		t.Errorf("far venue merged into downtown region: %v", g.EventRegion)
	}
	if g.NumRegions < 2 {
		t.Errorf("NumRegions = %d, want >= 2", g.NumRegions)
	}
}

func TestBuildGraphsEventTimeThreeSlotsEach(t *testing.T) {
	d, _, g := buildFixtureGraphs(t)
	if g.EventTime.NumEdges() != 3*d.NumEvents() {
		t.Fatalf("event-time edges = %d, want %d", g.EventTime.NumEdges(), 3*d.NumEvents())
	}
	if g.EventTime.NumB() != timeslot.NumSlots {
		t.Fatalf("time node set = %d, want %d", g.EventTime.NumB(), timeslot.NumSlots)
	}
	// Every event links to exactly one hour slot, one day slot, one type slot.
	for x := int32(0); x < int32(d.NumEvents()); x++ {
		nbrs, _ := g.EventTime.Neighbors(0, x)
		if len(nbrs) != 3 {
			t.Fatalf("event %d links to %d time slots", x, len(nbrs))
		}
	}
}

func TestBuildGraphsEventWordTFIDF(t *testing.T) {
	d, _, g := buildFixtureGraphs(t)
	// Every event document contributes edges (vocab has min-df 1, no
	// stopwords in the fixture docs).
	for x := int32(0); x < int32(d.NumEvents()); x++ {
		nbrs, ws := g.EventWord.Neighbors(0, x)
		if len(nbrs) != len(d.Events[x].Words) {
			t.Errorf("event %d: %d word edges for %d distinct words", x, len(nbrs), len(d.Events[x].Words))
		}
		for _, w := range ws {
			if w <= 0 {
				t.Errorf("event %d: non-positive TF-IDF weight", x)
			}
		}
	}
	// Rarer word gets higher IDF: "poetry" (df 1) vs "music" (df 4).
	poetry := g.Vocab.ID("poetry")
	music := g.Vocab.ID("music")
	if poetry < 0 || music < 0 {
		t.Fatal("fixture words missing from vocabulary")
	}
	if g.Vocab.IDF(poetry) <= g.Vocab.IDF(music) {
		t.Error("IDF ordering violated")
	}
}

func TestBuildGraphsUserUserWeights(t *testing.T) {
	_, _, g := buildFixtureGraphs(t)
	// (0,1) share training events e0, e1 (e4 is validation): weight 1+2=3.
	nbrs, ws := g.UserUser.Neighbors(0, 0)
	if len(nbrs) != 1 || nbrs[0] != 1 {
		t.Fatalf("user 0 neighbors = %v", nbrs)
	}
	if ws[0] != 3 {
		t.Errorf("weight(0,1) = %v, want 3 (1 + 2 common training events)", ws[0])
	}
	// (1,2) share no training events: weight 1.
	nbrs, ws = g.UserUser.Neighbors(0, 2)
	if len(nbrs) != 1 || ws[0] != 1 {
		t.Errorf("user 2 edges = %v %v, want single weight-1 edge to user 1", nbrs, ws)
	}
}

func TestBuildGraphsFriendshipOverride(t *testing.T) {
	d := fixture(t)
	s, err := ChronologicalSplit(d, SplitConfig{TrainFrac: 0.7, ValidationFracOfHoldout: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := GraphsConfig{
		DBSCAN:        geo.DBSCANConfig{EpsKm: 3, MinPts: 2},
		NoiseAttachKm: 5,
		Vocab:         text.VocabConfig{MinDocFreq: 1},
		Friendships:   [][2]int32{{0, 1}}, // scenario 2: (1,2) removed
	}
	g, err := BuildGraphs(d, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.UserUser.HasEdge(1, 2) {
		t.Error("removed link (1,2) present in user-user graph")
	}
	if !g.UserUser.HasEdge(0, 1) {
		t.Error("retained link (0,1) missing")
	}
}

func TestBuildGraphsAllOrdering(t *testing.T) {
	_, _, g := buildFixtureGraphs(t)
	all := g.All()
	if len(all) != 5 {
		t.Fatalf("All() returned %d graphs", len(all))
	}
	names := []string{"user-event", "event-time", "event-word", "event-location", "user-user"}
	for i, gr := range all {
		if gr.Name() != names[i] {
			t.Errorf("All()[%d] = %s, want %s", i, gr.Name(), names[i])
		}
	}
}
