// Package ebsnet defines the event-based social network data model of the
// paper (Definition 1) and everything derived from it: the five relation
// graphs of Definitions 2-6, the chronological train/validation/test event
// split, and the ground-truth sets for the two evaluation tasks.
package ebsnet

import (
	"fmt"
	"sort"
	"time"

	"ebsn/internal/geo"
)

// Event is one social event: where it happens, when it starts, and its
// tokenized textual description.
type Event struct {
	Venue int32
	Start time.Time
	Words []string
}

// Dataset is a full EBSN snapshot, the analogue of one of the paper's
// city datasets (Table I).
type Dataset struct {
	Name        string
	NumUsers    int
	Venues      []geo.Point
	Events      []Event
	Attendance  [][2]int32 // (user, event) pairs
	Friendships [][2]int32 // undirected (u, u') pairs, stored once

	// Derived indexes, built by Finalize.
	userEvents [][]int32 // events attended per user (X_u)
	eventUsers [][]int32 // users per event (U_x)
	friends    [][]int32 // adjacency lists
	finalized  bool
}

// Finalize builds the derived per-user and per-event indexes. It must be
// called once after the raw fields are populated; the import and generator
// paths both do so. Finalize is idempotent.
func (d *Dataset) Finalize() error {
	if err := d.validateRaw(); err != nil {
		return err
	}
	d.userEvents = make([][]int32, d.NumUsers)
	d.eventUsers = make([][]int32, len(d.Events))
	for _, a := range d.Attendance {
		u, x := a[0], a[1]
		d.userEvents[u] = append(d.userEvents[u], x)
		d.eventUsers[x] = append(d.eventUsers[x], u)
	}
	d.friends = make([][]int32, d.NumUsers)
	for _, f := range d.Friendships {
		d.friends[f[0]] = append(d.friends[f[0]], f[1])
		d.friends[f[1]] = append(d.friends[f[1]], f[0])
	}
	for u := 0; u < d.NumUsers; u++ {
		sortInt32s(d.userEvents[u])
		sortInt32s(d.friends[u])
	}
	for x := range d.Events {
		sortInt32s(d.eventUsers[x])
	}
	d.finalized = true
	return nil
}

func (d *Dataset) validateRaw() error {
	if d.NumUsers <= 0 {
		return fmt.Errorf("ebsnet: dataset %q has no users", d.Name)
	}
	if len(d.Events) == 0 {
		return fmt.Errorf("ebsnet: dataset %q has no events", d.Name)
	}
	if len(d.Venues) == 0 {
		return fmt.Errorf("ebsnet: dataset %q has no venues", d.Name)
	}
	for i, e := range d.Events {
		if int(e.Venue) < 0 || int(e.Venue) >= len(d.Venues) {
			return fmt.Errorf("ebsnet: event %d references venue %d of %d", i, e.Venue, len(d.Venues))
		}
		if e.Start.IsZero() {
			return fmt.Errorf("ebsnet: event %d has zero start time", i)
		}
	}
	for i, a := range d.Attendance {
		if int(a[0]) < 0 || int(a[0]) >= d.NumUsers {
			return fmt.Errorf("ebsnet: attendance %d references user %d of %d", i, a[0], d.NumUsers)
		}
		if int(a[1]) < 0 || int(a[1]) >= len(d.Events) {
			return fmt.Errorf("ebsnet: attendance %d references event %d of %d", i, a[1], len(d.Events))
		}
	}
	for i, f := range d.Friendships {
		if int(f[0]) < 0 || int(f[0]) >= d.NumUsers || int(f[1]) < 0 || int(f[1]) >= d.NumUsers {
			return fmt.Errorf("ebsnet: friendship %d out of range: %v", i, f)
		}
		if f[0] == f[1] {
			return fmt.Errorf("ebsnet: friendship %d is a self-loop on user %d", i, f[0])
		}
	}
	return nil
}

func (d *Dataset) mustFinal() {
	if !d.finalized {
		panic("ebsnet: Dataset used before Finalize")
	}
}

// NumEvents returns the event count.
func (d *Dataset) NumEvents() int { return len(d.Events) }

// UserEvents returns X_u, the sorted event IDs user u attended. The slice
// must not be mutated.
func (d *Dataset) UserEvents(u int32) []int32 {
	d.mustFinal()
	return d.userEvents[u]
}

// EventUsers returns U_x, the sorted user IDs that attended event x.
func (d *Dataset) EventUsers(x int32) []int32 {
	d.mustFinal()
	return d.eventUsers[x]
}

// Friends returns the sorted friend IDs of user u.
func (d *Dataset) Friends(u int32) []int32 {
	d.mustFinal()
	return d.friends[u]
}

// AreFriends reports whether u and v share a friendship edge.
func (d *Dataset) AreFriends(u, v int32) bool {
	d.mustFinal()
	return containsInt32(d.friends[u], v)
}

// Attended reports whether user u attended event x.
func (d *Dataset) Attended(u, x int32) bool {
	d.mustFinal()
	return containsInt32(d.userEvents[u], x)
}

// CommonEvents returns |X_u ∩ X_u'| restricted to events for which
// inTrain returns true (pass nil to count over all events). The user-user
// edge weight of Definition 2 is 1 + this count; restricting to training
// events keeps test attendance from leaking into the training graphs.
func (d *Dataset) CommonEvents(u, v int32, inTrain func(x int32) bool) int {
	d.mustFinal()
	a, b := d.userEvents[u], d.userEvents[v]
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if inTrain == nil || inTrain(a[i]) {
				n++
			}
			i++
			j++
		}
	}
	return n
}

// FilterMinEvents returns a new dataset keeping only users who attended at
// least minEvents events, renumbering users densely, mirroring the paper's
// "filter out users who attended less than 5 events" preprocessing step.
// Friendships between removed users are dropped.
func (d *Dataset) FilterMinEvents(minEvents int) (*Dataset, error) {
	d.mustFinal()
	keep := make([]int32, d.NumUsers)
	n := int32(0)
	for u := 0; u < d.NumUsers; u++ {
		if len(d.userEvents[u]) >= minEvents {
			keep[u] = n
			n++
		} else {
			keep[u] = -1
		}
	}
	out := &Dataset{
		Name:     d.Name,
		NumUsers: int(n),
		Venues:   d.Venues,
		Events:   d.Events,
	}
	for _, a := range d.Attendance {
		if nu := keep[a[0]]; nu >= 0 {
			out.Attendance = append(out.Attendance, [2]int32{nu, a[1]})
		}
	}
	for _, f := range d.Friendships {
		nu, nv := keep[f[0]], keep[f[1]]
		if nu >= 0 && nv >= 0 {
			out.Friendships = append(out.Friendships, [2]int32{nu, nv})
		}
	}
	if err := out.Finalize(); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats summarizes the dataset in the shape of the paper's Table I.
type Stats struct {
	Name        string
	Users       int
	Events      int
	Venues      int
	Attendances int
	Friendships int
}

// Stats returns Table I-style summary statistics.
func (d *Dataset) Stats() Stats {
	return Stats{
		Name:        d.Name,
		Users:       d.NumUsers,
		Events:      len(d.Events),
		Venues:      len(d.Venues),
		Attendances: len(d.Attendance),
		Friendships: len(d.Friendships),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: users=%d events=%d venues=%d attendances=%d friendships=%d",
		s.Name, s.Users, s.Events, s.Venues, s.Attendances, s.Friendships)
}

func sortInt32s(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func containsInt32(sorted []int32, v int32) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })
	return i < len(sorted) && sorted[i] == v
}
