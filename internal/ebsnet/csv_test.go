package ebsnet

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := fixture(t)
	dir := t.TempDir()
	if err := ExportCSV(d, dir); err != nil {
		t.Fatalf("ExportCSV: %v", err)
	}
	got, err := ImportCSV(dir)
	if err != nil {
		t.Fatalf("ImportCSV: %v", err)
	}
	if got.Name != d.Name || got.NumUsers != d.NumUsers {
		t.Errorf("meta mismatch: %q/%d vs %q/%d", got.Name, got.NumUsers, d.Name, d.NumUsers)
	}
	if !reflect.DeepEqual(got.Venues, d.Venues) {
		t.Error("venues differ after round trip")
	}
	if len(got.Events) != len(d.Events) {
		t.Fatalf("event count %d vs %d", len(got.Events), len(d.Events))
	}
	for i := range d.Events {
		a, b := got.Events[i], d.Events[i]
		if a.Venue != b.Venue || !a.Start.Equal(b.Start) || !reflect.DeepEqual(a.Words, b.Words) {
			t.Errorf("event %d differs: %+v vs %+v", i, a, b)
		}
	}
	if !reflect.DeepEqual(got.Attendance, d.Attendance) {
		t.Error("attendance differs after round trip")
	}
	if !reflect.DeepEqual(got.Friendships, d.Friendships) {
		t.Error("friendships differ after round trip")
	}
}

func TestImportMissingFile(t *testing.T) {
	if _, err := ImportCSV(t.TempDir()); err == nil {
		t.Fatal("import of empty directory succeeded")
	}
}

func TestImportMalformedRows(t *testing.T) {
	d := fixture(t)
	cases := map[string]struct {
		file    string
		content string
	}{
		"badNumUsers":   {metaFile, "name,num_users\nfixture,notanumber\n"},
		"badLat":        {venuesFile, "id,lat,lng\n0,abc,116.4\n"},
		"badVenueRef":   {eventsFile, "id,venue,start_unix,words\n0,notanumber,100,jazz\n"},
		"badStart":      {eventsFile, "id,venue,start_unix,words\n0,0,notatime,jazz\n"},
		"badAttendance": {attendanceFile, "user,event\nx,0\n"},
		"badFriendship": {friendshipsFile, "user_a,user_b\n0,y\n"},
		"wrongColumns":  {attendanceFile, "user,event\n1,2,3\n"},
	}
	for name, c := range cases {
		dir := t.TempDir()
		if err := ExportCSV(d, dir); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, c.file), []byte(c.content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ImportCSV(dir); err == nil {
			t.Errorf("%s: malformed file accepted", name)
		}
	}
}

func TestImportRejectsInconsistentData(t *testing.T) {
	d := fixture(t)
	dir := t.TempDir()
	if err := ExportCSV(d, dir); err != nil {
		t.Fatal(err)
	}
	// Attendance referencing a user beyond num_users must fail Finalize.
	if err := os.WriteFile(filepath.Join(dir, attendanceFile), []byte("user,event\n99,0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ImportCSV(dir); err == nil {
		t.Fatal("out-of-range attendance accepted")
	}
}

func TestExportCreatesDirectory(t *testing.T) {
	d := fixture(t)
	dir := filepath.Join(t.TempDir(), "nested", "path")
	if err := ExportCSV(d, dir); err != nil {
		t.Fatalf("ExportCSV to nested dir: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, eventsFile)); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyWordsRoundTrip(t *testing.T) {
	d := fixture(t)
	d.Events[0].Words = nil
	if err := d.Finalize(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ExportCSV(d, dir); err != nil {
		t.Fatal(err)
	}
	got, err := ImportCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events[0].Words) != 0 {
		t.Errorf("empty word list became %v", got.Events[0].Words)
	}
}
