package ebsnet

import (
	"testing"
	"testing/quick"
	"time"

	"ebsn/internal/geo"
	"ebsn/internal/rng"
)

func TestChronologicalSplitPartitions(t *testing.T) {
	d := fixture(t)
	s, err := ChronologicalSplit(d, SplitConfig{TrainFrac: 0.7, ValidationFracOfHoldout: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// 6 events: nTrain = 4, holdout 2 -> 1 validation, 1 test.
	if len(s.TrainEvents) != 4 || len(s.ValidationEvents) != 1 || len(s.TestEvents) != 1 {
		t.Fatalf("split sizes %d/%d/%d", len(s.TrainEvents), len(s.ValidationEvents), len(s.TestEvents))
	}
	// Events are time-ordered by ID in the fixture, so train = {0,1,2,3},
	// validation = {4}, test = {5}.
	for _, x := range []int32{0, 1, 2, 3} {
		if s.Class(x) != Train {
			t.Errorf("event %d class = %v, want train", x, s.Class(x))
		}
	}
	if s.Class(4) != Validation || s.Class(5) != Test {
		t.Errorf("holdout classes: %v %v", s.Class(4), s.Class(5))
	}
}

func TestSplitChronologyInvariant(t *testing.T) {
	d := fixture(t)
	s, err := ChronologicalSplit(d, DefaultSplitConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every train event must start no later than every holdout event.
	var latestTrain, earliestHoldout = d.Events[s.TrainEvents[0]].Start, d.Events[s.TestEvents[0]].Start
	for _, x := range s.TrainEvents {
		if d.Events[x].Start.After(latestTrain) {
			latestTrain = d.Events[x].Start
		}
	}
	for _, x := range append(append([]int32{}, s.ValidationEvents...), s.TestEvents...) {
		if d.Events[x].Start.Before(earliestHoldout) {
			earliestHoldout = d.Events[x].Start
		}
	}
	if latestTrain.After(earliestHoldout) {
		t.Errorf("train event at %v starts after holdout event at %v", latestTrain, earliestHoldout)
	}
}

func TestSplitAttendancePartitioning(t *testing.T) {
	d := fixture(t)
	s, err := ChronologicalSplit(d, SplitConfig{TrainFrac: 0.7, ValidationFracOfHoldout: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	total := len(s.TrainAttendance) + len(s.ValidationAttendance) + len(s.TestAttendance)
	if total != len(d.Attendance) {
		t.Fatalf("attendance partitions sum to %d of %d", total, len(d.Attendance))
	}
	for _, a := range s.TrainAttendance {
		if s.Class(a[1]) != Train {
			t.Errorf("train attendance on %v event", s.Class(a[1]))
		}
	}
	for _, a := range s.TestAttendance {
		if s.Class(a[1]) != Test {
			t.Errorf("test attendance on %v event", s.Class(a[1]))
		}
	}
	if got := s.HoldoutAttendance(Test); len(got) != len(s.TestAttendance) {
		t.Error("HoldoutAttendance(Test) mismatch")
	}
	if got := s.HoldoutEvents(Validation); len(got) != len(s.ValidationEvents) {
		t.Error("HoldoutEvents(Validation) mismatch")
	}
}

func TestSplitConfigValidation(t *testing.T) {
	d := fixture(t)
	if _, err := ChronologicalSplit(d, SplitConfig{TrainFrac: 0}); err == nil {
		t.Error("TrainFrac=0 accepted")
	}
	if _, err := ChronologicalSplit(d, SplitConfig{TrainFrac: 1}); err == nil {
		t.Error("TrainFrac=1 accepted")
	}
	if _, err := ChronologicalSplit(d, SplitConfig{TrainFrac: 0.7, ValidationFracOfHoldout: 1}); err == nil {
		t.Error("ValidationFrac=1 accepted")
	}
}

func TestPartnerGroundTruth(t *testing.T) {
	d := fixture(t)
	s, err := ChronologicalSplit(d, SplitConfig{TrainFrac: 0.7, ValidationFracOfHoldout: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Test event is e5, attended by u1 and u2, who are friends ->
	// both orientations present.
	triples := PartnerGroundTruth(d, s, Test)
	if len(triples) != 2 {
		t.Fatalf("triples = %v, want 2 orientations of (1,2,5)", triples)
	}
	seen := map[PartnerTriple]bool{}
	for _, tr := range triples {
		seen[tr] = true
		if tr.Event != 5 {
			t.Errorf("triple on wrong event: %+v", tr)
		}
	}
	if !seen[PartnerTriple{1, 2, 5}] || !seen[PartnerTriple{2, 1, 5}] {
		t.Errorf("missing orientation: %v", triples)
	}
	// Validation event e4 is attended by u0 and u1 (friends).
	vtriples := PartnerGroundTruth(d, s, Validation)
	if len(vtriples) != 2 {
		t.Fatalf("validation triples = %v", vtriples)
	}
}

func TestPartnerGroundTruthExcludesNonFriends(t *testing.T) {
	d := fixture(t)
	// Make e3's attendees (u2, u3) non-friends: already are. Use a split
	// putting e3 in test.
	s, err := ChronologicalSplit(d, SplitConfig{TrainFrac: 0.34, ValidationFracOfHoldout: 0.0})
	if err != nil {
		t.Fatal(err)
	}
	triples := PartnerGroundTruth(d, s, Test)
	for _, tr := range triples {
		if !d.AreFriends(tr.User, tr.Partner) {
			t.Errorf("non-friend triple: %+v", tr)
		}
		if !d.Attended(tr.User, tr.Event) || !d.Attended(tr.Partner, tr.Event) {
			t.Errorf("triple without co-attendance: %+v", tr)
		}
	}
}

func TestRemoveLinks(t *testing.T) {
	friendships := [][2]int32{{0, 1}, {1, 2}, {2, 3}}
	triples := []PartnerTriple{{User: 2, Partner: 1, Event: 9}} // unordered pair (1,2)
	out := RemoveLinks(friendships, triples)
	if len(out) != 2 {
		t.Fatalf("RemoveLinks kept %d links, want 2", len(out))
	}
	for _, f := range out {
		if (f[0] == 1 && f[1] == 2) || (f[0] == 2 && f[1] == 1) {
			t.Error("removed pair survived")
		}
	}
}

func TestRemoveLinksEmptyTriples(t *testing.T) {
	friendships := [][2]int32{{0, 1}}
	out := RemoveLinks(friendships, nil)
	if len(out) != 1 {
		t.Fatal("RemoveLinks with no triples altered the list")
	}
}

// Property: for randomly shaped datasets, the chronological split always
// partitions events exhaustively and disjointly, attendance classes match
// event classes, and every ground-truth triple co-attends a holdout event.
func TestSplitInvariantsProperty(t *testing.T) {
	f := func(seed uint64, nEventsRaw, nUsersRaw uint8) bool {
		nEvents := int(nEventsRaw)%40 + 4
		nUsers := int(nUsersRaw)%20 + 3
		src := rng.New(seed)
		base := time.Date(2011, 1, 1, 12, 0, 0, 0, time.UTC)
		d := &Dataset{
			Name:     "prop",
			NumUsers: nUsers,
			Venues:   []geo.Point{{Lat: 39.9, Lng: 116.4}},
		}
		for i := 0; i < nEvents; i++ {
			d.Events = append(d.Events, Event{
				Venue: 0,
				Start: base.AddDate(0, 0, src.Intn(365)),
				Words: []string{"w"},
			})
		}
		seen := map[[2]int32]bool{}
		for i := 0; i < nUsers*4; i++ {
			a := [2]int32{int32(src.Intn(nUsers)), int32(src.Intn(nEvents))}
			if !seen[a] {
				seen[a] = true
				d.Attendance = append(d.Attendance, a)
			}
		}
		for i := 0; i < nUsers; i++ {
			u, v := int32(src.Intn(nUsers)), int32(src.Intn(nUsers))
			if u != v {
				d.Friendships = append(d.Friendships, [2]int32{u, v})
			}
		}
		if err := d.Finalize(); err != nil {
			return false
		}
		s, err := ChronologicalSplit(d, DefaultSplitConfig())
		if err != nil {
			return false
		}
		// Exhaustive + disjoint partition.
		if len(s.TrainEvents)+len(s.ValidationEvents)+len(s.TestEvents) != nEvents {
			return false
		}
		classCount := map[EventClass]int{}
		for x := int32(0); x < int32(nEvents); x++ {
			classCount[s.Class(x)]++
		}
		if classCount[Train] != len(s.TrainEvents) ||
			classCount[Validation] != len(s.ValidationEvents) ||
			classCount[Test] != len(s.TestEvents) {
			return false
		}
		// Attendance classes match.
		if len(s.TrainAttendance)+len(s.ValidationAttendance)+len(s.TestAttendance) != len(d.Attendance) {
			return false
		}
		// Ground-truth triples co-attend holdout events between friends.
		for _, tr := range PartnerGroundTruth(d, s, Test) {
			if s.Class(tr.Event) != Test || !d.AreFriends(tr.User, tr.Partner) ||
				!d.Attended(tr.User, tr.Event) || !d.Attended(tr.Partner, tr.Event) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
