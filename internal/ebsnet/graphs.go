package ebsnet

import (
	"fmt"

	"ebsn/internal/geo"
	"ebsn/internal/graph"
	"ebsn/internal/text"
	"ebsn/internal/timeslot"
)

// GraphsConfig controls relation-graph construction.
type GraphsConfig struct {
	// DBSCAN parameters for region discovery over event coordinates
	// (Definition 4 discretizes locations with DBSCAN).
	DBSCAN geo.DBSCANConfig
	// NoiseAttachKm is how far a DBSCAN-noise event may be from a cluster
	// centroid and still join that region; beyond it the event founds a
	// singleton region.
	NoiseAttachKm float64
	// Vocab controls event-content vocabulary construction.
	Vocab text.VocabConfig
	// Friendships optionally overrides the dataset's friendship list —
	// the "potential friends" scenario trains with ground-truth links
	// removed. Nil means use the dataset's list.
	Friendships [][2]int32
}

// DefaultGraphsConfig returns sensible city-scale defaults.
func DefaultGraphsConfig() GraphsConfig {
	return GraphsConfig{
		DBSCAN:        geo.DBSCANConfig{EpsKm: 1.0, MinPts: 5},
		NoiseAttachKm: 5.0,
		Vocab:         text.VocabConfig{MinDocFreq: 2, MaxDocFraction: 0.5},
	}
}

// Graphs bundles the five relation graphs of Definitions 2-6 plus the
// artifacts needed to interpret their node ID spaces.
type Graphs struct {
	UserEvent     *graph.Bipartite // users × events, training attendance only
	EventLocation *graph.Bipartite // events × regions
	EventTime     *graph.Bipartite // events × 33 time slots
	EventWord     *graph.Bipartite // events × vocabulary, TF-IDF weighted
	UserUser      *graph.Bipartite // users × users, symmetric

	Vocab       *text.Vocabulary
	NumRegions  int
	EventRegion []int // region ID per event
}

// All returns the graphs in the canonical order used by joint training.
func (g *Graphs) All() []*graph.Bipartite {
	return []*graph.Bipartite{g.UserEvent, g.EventTime, g.EventWord, g.EventLocation, g.UserUser}
}

// BuildGraphs constructs the five relation graphs from a finalized dataset
// and a chronological split. Per the paper's cold-start setup, holdout
// events keep their content/location/time edges (that is how their
// embeddings are learned) but contribute no user-event edges; user-user
// weights 1 + |X_u ∩ X_u'| count common *training* events only.
func BuildGraphs(d *Dataset, s *Split, cfg GraphsConfig) (*Graphs, error) {
	d.mustFinal()

	// --- Regions via DBSCAN over event coordinates (Definition 4).
	coords := make([]geo.Point, len(d.Events))
	for i, e := range d.Events {
		coords[i] = d.Venues[e.Venue]
	}
	labels, k, err := geo.DBSCAN(coords, cfg.DBSCAN)
	if err != nil {
		return nil, fmt.Errorf("ebsnet: region clustering: %w", err)
	}
	regions, numRegions := geo.AssignRegions(coords, labels, k, cfg.NoiseAttachKm)

	// --- Vocabulary over all event documents (holdout events need
	// content edges to receive embeddings).
	docs := make([][]string, len(d.Events))
	for i, e := range d.Events {
		docs[i] = e.Words
	}
	vocab := text.BuildVocabulary(docs, cfg.Vocab)
	if vocab.Size() == 0 {
		return nil, fmt.Errorf("ebsnet: empty vocabulary after filtering (%d docs)", len(docs))
	}

	g := &Graphs{Vocab: vocab, NumRegions: numRegions, EventRegion: regions}

	// --- User-Event (Definition 3): training attendance, weight 1 per
	// attendance (no rating signal in EBSN data).
	ux := graph.NewBuilder("user-event", d.NumUsers, len(d.Events))
	for _, a := range s.TrainAttendance {
		ux.AddEdge(a[0], a[1], 1)
	}
	g.UserEvent = ux.Build()

	// --- Event-Location (Definition 4): one region edge per event.
	xl := graph.NewBuilder("event-location", len(d.Events), numRegions)
	for x, r := range regions {
		xl.AddEdge(int32(x), int32(r), 1)
	}
	g.EventLocation = xl.Build()

	// --- Event-Time (Definition 5): exactly three slot edges per event.
	xt := graph.NewBuilder("event-time", len(d.Events), timeslot.NumSlots)
	for x, e := range d.Events {
		for _, slot := range timeslot.Slots(e.Start) {
			xt.AddEdge(int32(x), slot, 1)
		}
	}
	g.EventTime = xt.Build()

	// --- Event-Content (Definition 6): TF-IDF weighted word edges.
	xc := graph.NewBuilder("event-word", len(d.Events), vocab.Size())
	for x := range d.Events {
		for _, ww := range vocab.TFIDF(docs[x]) {
			xc.AddEdge(int32(x), ww.Word, ww.Weight)
		}
	}
	g.EventWord = xc.Build()

	// --- User-User (Definition 2): weight 1 + common training events.
	friendships := cfg.Friendships
	if friendships == nil {
		friendships = d.Friendships
	}
	uu := graph.NewSymmetricBuilder("user-user", d.NumUsers)
	for _, f := range friendships {
		common := d.CommonEvents(f[0], f[1], s.InTrain)
		uu.AddEdge(f[0], f[1], float32(1+common))
	}
	g.UserUser = uu.Build()

	for _, gr := range g.All() {
		if err := gr.Validate(); err != nil {
			return nil, err
		}
	}
	return g, nil
}
