package ebsnet

import (
	"fmt"
	"sort"
)

// EventClass says which partition of the chronological split an event
// falls in.
type EventClass uint8

// Split partitions.
const (
	Train EventClass = iota
	Validation
	Test
)

func (c EventClass) String() string {
	switch c {
	case Train:
		return "train"
	case Validation:
		return "validation"
	case Test:
		return "test"
	default:
		return fmt.Sprintf("EventClass(%d)", uint8(c))
	}
}

// Split is a chronological partition of the event set. Per the paper:
// events are ordered by start time, the earliest 70% form the training
// set, and the remaining 30% are further divided 1:2 into validation and
// test. Attendance edges inherit the class of their event, which makes
// every validation/test event cold-start by construction.
type Split struct {
	class []EventClass

	TrainEvents      []int32
	ValidationEvents []int32
	TestEvents       []int32

	// Attendance edges partitioned by the class of their event. These are
	// E_UX^training / E_UX^validation / E_UX^test from the paper.
	TrainAttendance      [][2]int32
	ValidationAttendance [][2]int32
	TestAttendance       [][2]int32
}

// SplitConfig controls the partition ratios.
type SplitConfig struct {
	// TrainFrac is the fraction of events (chronologically earliest) used
	// for training. The paper uses 0.7.
	TrainFrac float64
	// ValidationFracOfHoldout is the fraction of the held-out events used
	// for validation; the rest is test. The paper uses 1/3 (a 1:2 ratio).
	ValidationFracOfHoldout float64
}

// DefaultSplitConfig returns the paper's 7:3 split with a 1:2
// validation:test division of the holdout.
func DefaultSplitConfig() SplitConfig {
	return SplitConfig{TrainFrac: 0.7, ValidationFracOfHoldout: 1.0 / 3.0}
}

// ChronologicalSplit partitions the dataset's events by start time.
func ChronologicalSplit(d *Dataset, cfg SplitConfig) (*Split, error) {
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		return nil, fmt.Errorf("ebsnet: TrainFrac %v out of (0,1)", cfg.TrainFrac)
	}
	if cfg.ValidationFracOfHoldout < 0 || cfg.ValidationFracOfHoldout >= 1 {
		return nil, fmt.Errorf("ebsnet: ValidationFracOfHoldout %v out of [0,1)", cfg.ValidationFracOfHoldout)
	}
	n := len(d.Events)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		ti, tj := d.Events[order[i]].Start, d.Events[order[j]].Start
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return order[i] < order[j]
	})

	nTrain := int(cfg.TrainFrac * float64(n))
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain >= n {
		nTrain = n - 1
	}
	holdout := n - nTrain
	nVal := int(cfg.ValidationFracOfHoldout * float64(holdout))

	s := &Split{class: make([]EventClass, n)}
	for i, x := range order {
		switch {
		case i < nTrain:
			s.class[x] = Train
			s.TrainEvents = append(s.TrainEvents, x)
		case i < nTrain+nVal:
			s.class[x] = Validation
			s.ValidationEvents = append(s.ValidationEvents, x)
		default:
			s.class[x] = Test
			s.TestEvents = append(s.TestEvents, x)
		}
	}
	for _, a := range d.Attendance {
		switch s.class[a[1]] {
		case Train:
			s.TrainAttendance = append(s.TrainAttendance, a)
		case Validation:
			s.ValidationAttendance = append(s.ValidationAttendance, a)
		default:
			s.TestAttendance = append(s.TestAttendance, a)
		}
	}
	return s, nil
}

// Class returns the partition of event x.
func (s *Split) Class(x int32) EventClass { return s.class[x] }

// InTrain reports whether event x is a training event.
func (s *Split) InTrain(x int32) bool { return s.class[x] == Train }

// HoldoutAttendance returns the attendance set for the requested
// evaluation class (Validation or Test).
func (s *Split) HoldoutAttendance(c EventClass) [][2]int32 {
	if c == Validation {
		return s.ValidationAttendance
	}
	return s.TestAttendance
}

// HoldoutEvents returns the event IDs of the requested evaluation class.
func (s *Split) HoldoutEvents(c EventClass) []int32 {
	if c == Validation {
		return s.ValidationEvents
	}
	return s.TestEvents
}

// PartnerTriple is one ground-truth case (u, u', x) for the joint
// event-partner task: target user u, partner u', event x.
type PartnerTriple struct {
	User    int32
	Partner int32
	Event   int32
}

// PartnerGroundTruth builds the test set Y of the paper: for each holdout
// event x, every ordered pair of distinct friends who both attended x
// yields a triple (u, u', x). Both orientations are included because the
// paper declares the two users "suitable partners to each other".
func PartnerGroundTruth(d *Dataset, s *Split, c EventClass) []PartnerTriple {
	var out []PartnerTriple
	for _, x := range s.HoldoutEvents(c) {
		users := d.EventUsers(x)
		for i := 0; i < len(users); i++ {
			for j := i + 1; j < len(users); j++ {
				if d.AreFriends(users[i], users[j]) {
					out = append(out, PartnerTriple{users[i], users[j], x})
					out = append(out, PartnerTriple{users[j], users[i], x})
				}
			}
		}
	}
	return out
}

// RemoveLinks returns the friendship list minus every (unordered) pair
// that appears in the triples — the paper's "potential friends" scenario 2
// removes ground-truth user-partner links from G_UU before training.
func RemoveLinks(friendships [][2]int32, triples []PartnerTriple) [][2]int32 {
	drop := make(map[[2]int32]struct{}, len(triples))
	for _, tr := range triples {
		a, b := tr.User, tr.Partner
		if a > b {
			a, b = b, a
		}
		drop[[2]int32{a, b}] = struct{}{}
	}
	out := make([][2]int32, 0, len(friendships))
	for _, f := range friendships {
		a, b := f[0], f[1]
		if a > b {
			a, b = b, a
		}
		if _, hit := drop[[2]int32{a, b}]; hit {
			continue
		}
		out = append(out, f)
	}
	return out
}
