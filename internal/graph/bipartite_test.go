package graph

import (
	"math"
	"testing"
	"testing/quick"

	"ebsn/internal/rng"
)

func buildSmall(t *testing.T) *Bipartite {
	t.Helper()
	b := NewBuilder("test", 3, 4)
	b.AddEdge(0, 0, 1)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 1, 3)
	b.AddEdge(2, 3, 4)
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestBuildBasics(t *testing.T) {
	g := buildSmall(t)
	if g.NumA() != 3 || g.NumB() != 4 {
		t.Fatalf("sizes: %d %d", g.NumA(), g.NumB())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges: %d", g.NumEdges())
	}
	if g.TotalWeight() != 10 {
		t.Fatalf("total weight: %v", g.TotalWeight())
	}
	if g.NumNodes(SideA) != 3 || g.NumNodes(SideB) != 4 {
		t.Fatal("NumNodes mismatch")
	}
}

func TestDuplicateEdgesSumWeights(t *testing.T) {
	b := NewBuilder("dup", 2, 2)
	b.AddEdge(0, 0, 1)
	b.AddEdge(0, 0, 2.5)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("expected 1 edge, got %d", g.NumEdges())
	}
	if w := g.Edge(0).Weight; w != 3.5 {
		t.Fatalf("weight = %v, want 3.5", w)
	}
}

func TestZeroWeightIgnored(t *testing.T) {
	b := NewBuilder("zero", 2, 2)
	b.AddEdge(0, 0, 0)
	if b.EdgeCount() != 0 {
		t.Fatal("zero-weight edge was stored")
	}
}

func TestNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative weight")
		}
	}()
	NewBuilder("neg", 2, 2).AddEdge(0, 0, -1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range edge")
		}
	}()
	NewBuilder("oob", 2, 2).AddEdge(0, 5, 1)
}

func TestNeighbors(t *testing.T) {
	g := buildSmall(t)
	nbrs, ws := g.Neighbors(SideA, 0)
	if len(nbrs) != 2 || nbrs[0] != 0 || nbrs[1] != 1 {
		t.Fatalf("neighbors of A0: %v", nbrs)
	}
	if ws[0] != 1 || ws[1] != 2 {
		t.Fatalf("weights of A0: %v", ws)
	}
	nbrs, _ = g.Neighbors(SideB, 1)
	if len(nbrs) != 2 {
		t.Fatalf("neighbors of B1: %v", nbrs)
	}
	nbrs, _ = g.Neighbors(SideB, 2)
	if len(nbrs) != 0 {
		t.Fatalf("isolated node B2 has neighbors: %v", nbrs)
	}
}

func TestHasEdge(t *testing.T) {
	g := buildSmall(t)
	if !g.HasEdge(0, 1) {
		t.Error("HasEdge(0,1) = false")
	}
	if g.HasEdge(0, 3) {
		t.Error("HasEdge(0,3) = true")
	}
	if g.HasEdge(2, 0) {
		t.Error("HasEdge(2,0) = true")
	}
}

// TestHasEdgeBinarySearchPath builds rows long enough to cross the
// linear-scan threshold so the binary-search branch is exercised against
// exhaustive membership, on both a bipartite and a symmetric graph.
func TestHasEdgeBinarySearchPath(t *testing.T) {
	const nB = 64
	b := NewBuilder("wide", 2, nB)
	present := map[int32]bool{}
	for i := int32(0); i < nB; i += 2 { // every even B-node, 32 >> threshold
		b.AddEdge(0, i, 1)
		present[i] = true
	}
	b.AddEdge(1, 63, 1)
	g := b.Build()
	for i := int32(0); i < nB; i++ {
		if got := g.HasEdge(0, i); got != present[i] {
			t.Errorf("HasEdge(0,%d) = %v, want %v", i, got, present[i])
		}
	}
	if !g.HasEdge(1, 63) || g.HasEdge(1, 0) {
		t.Error("short-row membership wrong")
	}

	sb := NewSymmetricBuilder("wide-sym", 64)
	for i := int32(1); i < 50; i++ {
		sb.AddEdge(0, i, 1) // node 0 gets a 49-neighbor row
	}
	sg := sb.Build()
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := int32(1); i < 64; i++ {
		want := i < 50
		if got := sg.HasEdge(0, i); got != want {
			t.Errorf("sym HasEdge(0,%d) = %v, want %v", i, got, want)
		}
		if got := sg.HasEdge(i, 0); got != want {
			t.Errorf("sym HasEdge(%d,0) = %v, want %v", i, got, want)
		}
	}
}

func TestDegrees(t *testing.T) {
	g := buildSmall(t)
	if g.Degree(SideA, 0) != 3 {
		t.Errorf("deg A0 = %v", g.Degree(SideA, 0))
	}
	if g.Degree(SideB, 1) != 5 {
		t.Errorf("deg B1 = %v", g.Degree(SideB, 1))
	}
	if g.Degree(SideB, 2) != 0 {
		t.Errorf("deg B2 = %v", g.Degree(SideB, 2))
	}
}

func TestEdgeSamplingProportionalToWeight(t *testing.T) {
	b := NewBuilder("ws", 2, 2)
	b.AddEdge(0, 0, 1)
	b.AddEdge(1, 1, 9)
	g := b.Build()
	src := rng.New(1)
	heavy := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if e := g.SampleEdge(src); e.A == 1 {
			heavy++
		}
	}
	frac := float64(heavy) / draws
	if math.Abs(frac-0.9) > 0.01 {
		t.Errorf("heavy edge sampled %.3f of draws, want ~0.9", frac)
	}
}

func TestNoiseSamplingFollowsDegree(t *testing.T) {
	b := NewBuilder("noise", 2, 3)
	// A0 has degree 16, A1 degree 1 -> noise ratio 16^.75 : 1 = 8 : 1.
	b.AddEdge(0, 0, 16)
	b.AddEdge(1, 1, 1)
	g := b.Build()
	src := rng.New(2)
	const draws = 90000
	c0 := 0
	for i := 0; i < draws; i++ {
		if g.SampleNoise(SideA, src) == 0 {
			c0++
		}
	}
	frac := float64(c0) / draws
	if math.Abs(frac-8.0/9.0) > 0.01 {
		t.Errorf("A0 noise fraction %.3f, want ~%.3f", frac, 8.0/9.0)
	}
	// B2 has degree 0 and must never be sampled.
	for i := 0; i < 10000; i++ {
		if g.SampleNoise(SideB, src) == 2 {
			t.Fatal("sampled degree-zero node from noise distribution")
		}
	}
}

func TestSymmetricGraph(t *testing.T) {
	b := NewSymmetricBuilder("uu", 4)
	b.AddEdge(0, 1, 2)
	b.AddEdge(2, 1, 1)
	b.AddEdge(1, 0, 3) // same undirected edge as (0,1): accumulates
	b.AddEdge(3, 3, 9) // self loop: dropped
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumEdges() != 4 { // 2 undirected edges, mirrored
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("mirror edge missing")
	}
	if g.Degree(SideA, 1) != 6 { // 5 from (0,1), 1 from (1,2)
		t.Errorf("deg(1) = %v, want 6", g.Degree(SideA, 1))
	}
	if g.HasEdge(3, 3) {
		t.Error("self-loop survived")
	}
	if !g.Symmetric() {
		t.Error("Symmetric() = false")
	}
}

func TestBuildDeterministic(t *testing.T) {
	mk := func() *Bipartite {
		b := NewBuilder("det", 10, 10)
		for i := int32(0); i < 10; i++ {
			for j := int32(0); j < 10; j++ {
				if (i+j)%3 == 0 {
					b.AddEdge(i, j, float32(i+j+1))
				}
			}
		}
		return b.Build()
	}
	g1, g2 := mk(), mk()
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("nondeterministic edge count")
	}
	for i := 0; i < g1.NumEdges(); i++ {
		if g1.Edge(i) != g2.Edge(i) {
			t.Fatalf("edge %d differs between identical builds", i)
		}
	}
}

func TestEmptyGraphSamplePanics(t *testing.T) {
	g := NewBuilder("empty", 2, 2).Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("empty graph should validate: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SampleEdge on empty graph did not panic")
		}
	}()
	g.SampleEdge(rng.New(1))
}

func TestStatsString(t *testing.T) {
	g := buildSmall(t)
	s := g.Stats()
	if s.Edges != 4 || s.NodesA != 3 || s.NodesB != 4 {
		t.Fatalf("stats: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty Stats string")
	}
}

// Property: for random edge sets, Validate passes and degree sums match
// total weight on both sides.
func TestGraphInvariantsProperty(t *testing.T) {
	f := func(pairs []uint16, seedW []uint8) bool {
		const nA, nB = 17, 23
		b := NewBuilder("prop", nA, nB)
		for i, p := range pairs {
			a := int32(p % nA)
			bb := int32((p / nA) % nB)
			w := float32(1)
			if i < len(seedW) {
				w = float32(seedW[i]%9) + 1
			}
			b.AddEdge(a, bb, w)
		}
		g := b.Build()
		if err := g.Validate(); err != nil {
			return false
		}
		var sumA float64
		for v := int32(0); v < nA; v++ {
			sumA += g.Degree(SideA, v)
		}
		return math.Abs(sumA-g.TotalWeight()) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: every sampled edge is a real edge and every sampled noise node
// is in range.
func TestSamplingValidityProperty(t *testing.T) {
	f := func(pairs []uint16, seed uint64) bool {
		const nA, nB = 11, 13
		b := NewBuilder("prop2", nA, nB)
		for _, p := range pairs {
			b.AddEdge(int32(p%nA), int32((p/nA)%nB), 1)
		}
		if b.EdgeCount() == 0 {
			return true
		}
		g := b.Build()
		src := rng.New(seed)
		for i := 0; i < 100; i++ {
			e := g.SampleEdge(src)
			if !g.HasEdge(e.A, e.B) {
				return false
			}
			if n := g.SampleNoise(SideB, src); n < 0 || int(n) >= nB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSampleEdge(b *testing.B) {
	bl := NewBuilder("bench", 1000, 1000)
	src := rng.New(3)
	for i := 0; i < 50000; i++ {
		bl.AddEdge(int32(src.Intn(1000)), int32(src.Intn(1000)), float32(src.Intn(5)+1))
	}
	g := bl.Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SampleEdge(src)
	}
}
