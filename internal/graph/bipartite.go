// Package graph provides the weighted bipartite graph representation that
// GEM trains on. Each of the paper's five relation graphs (user-event,
// event-location, event-time, event-content, user-user) is stored as a
// Bipartite value: an edge list with weights, CSR-style adjacency for both
// sides, alias tables for weight-proportional edge sampling and
// degree^0.75 noise sampling, and hash-set adjacency for rejecting true
// neighbors when drawing negatives.
//
// The user-user graph is a general graph, but as the paper notes it can be
// treated as bipartite with the same user set on both sides, which is how
// we store it (Kind Symmetric marks that the two sides share an ID space).
package graph

import (
	"fmt"
	"math"
	"sort"

	"ebsn/internal/alias"
	"ebsn/internal/rng"
)

// Side selects one of the two node sets of a bipartite graph.
type Side int

const (
	// SideA is the left node set (users in user-event, events in
	// event-location/time/content).
	SideA Side = iota
	// SideB is the right node set.
	SideB
)

func (s Side) String() string {
	if s == SideA {
		return "A"
	}
	return "B"
}

// Other returns the opposite side.
func (s Side) Other() Side {
	if s == SideA {
		return SideB
	}
	return SideA
}

// Edge is one weighted edge between node a on side A and node b on side B.
type Edge struct {
	A, B   int32
	Weight float32
}

// Builder accumulates edges before freezing them into a Bipartite.
// Duplicate (a,b) pairs have their weights summed.
type Builder struct {
	name      string
	nA, nB    int
	symmetric bool
	weights   map[[2]int32]float32
}

// NewBuilder returns a builder for a bipartite graph named name with nA
// left nodes and nB right nodes.
func NewBuilder(name string, nA, nB int) *Builder {
	if nA <= 0 || nB <= 0 {
		panic(fmt.Sprintf("graph: %s: node sets must be non-empty (nA=%d nB=%d)", name, nA, nB))
	}
	return &Builder{name: name, nA: nA, nB: nB, weights: make(map[[2]int32]float32)}
}

// NewSymmetricBuilder returns a builder for a general graph over n nodes
// stored bipartitely (both sides share the node ID space). AddEdge(a, b, w)
// records the undirected edge once; Build mirrors it so that both (a,b)
// and (b,a) are sampleable, matching how the paper treats the user-user
// graph.
func NewSymmetricBuilder(name string, n int) *Builder {
	b := NewBuilder(name, n, n)
	b.symmetric = true
	return b
}

// AddEdge accumulates weight w onto edge (a, b). Zero-weight additions are
// ignored; negative weights panic because no relation in the model admits
// them.
func (bl *Builder) AddEdge(a, b int32, w float32) {
	if w == 0 {
		return
	}
	if w < 0 {
		panic(fmt.Sprintf("graph: %s: negative edge weight %v on (%d,%d)", bl.name, w, a, b))
	}
	if int(a) < 0 || int(a) >= bl.nA || int(b) < 0 || int(b) >= bl.nB {
		panic(fmt.Sprintf("graph: %s: edge (%d,%d) out of range (%d,%d)", bl.name, a, b, bl.nA, bl.nB))
	}
	if bl.symmetric && a == b {
		// Self-loops carry no information for social proximity.
		return
	}
	key := [2]int32{a, b}
	if bl.symmetric && a > b {
		key = [2]int32{b, a}
	}
	bl.weights[key] += w
}

// EdgeCount returns the number of distinct edges accumulated so far
// (undirected edges counted once for symmetric builders).
func (bl *Builder) EdgeCount() int { return len(bl.weights) }

// Build freezes the accumulated edges into an immutable Bipartite.
func (bl *Builder) Build() *Bipartite {
	edges := make([]Edge, 0, len(bl.weights))
	for key, w := range bl.weights {
		edges = append(edges, Edge{A: key[0], B: key[1], Weight: w})
	}
	// Deterministic ordering regardless of map iteration.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	if bl.symmetric {
		mirrored := make([]Edge, 0, 2*len(edges))
		for _, e := range edges {
			mirrored = append(mirrored, e, Edge{A: e.B, B: e.A, Weight: e.Weight})
		}
		edges = mirrored
		// Re-sort so the CSR rows freeze builds come out ascending — the
		// sorted-adjacency invariant HasEdge's binary search relies on.
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].A != edges[j].A {
				return edges[i].A < edges[j].A
			}
			return edges[i].B < edges[j].B
		})
	}
	return freeze(bl.name, bl.nA, bl.nB, bl.symmetric, edges)
}

// Bipartite is an immutable weighted bipartite graph prepared for
// training: edge sampling, adjacency queries and noise distributions are
// all O(1) or O(deg).
type Bipartite struct {
	name      string
	nA, nB    int
	symmetric bool
	edges     []Edge

	// CSR adjacency for each side: adj[side][offsets[v]:offsets[v+1]]
	// holds the neighbor IDs of node v on the other side, ascending —
	// freeze consumes edges in (A,B)-sorted order, so each row comes out
	// sorted and HasEdge can binary-search it directly instead of
	// carrying a second map-based copy of the adjacency.
	offA, offB []int32
	adjA, adjB []int32
	wA, wB     []float32

	// Weighted degree per node (sum of incident edge weights).
	degA, degB []float64

	edgeSampler *alias.Table // indexes into edges, P ∝ weight
	noiseA      *alias.Table // nodes on side A, P ∝ deg^0.75
	noiseB      *alias.Table
}

func freeze(name string, nA, nB int, symmetric bool, edges []Edge) *Bipartite {
	g := &Bipartite{
		name:      name,
		nA:        nA,
		nB:        nB,
		symmetric: symmetric,
		edges:     edges,
		degA:      make([]float64, nA),
		degB:      make([]float64, nB),
	}

	countA := make([]int32, nA+1)
	countB := make([]int32, nB+1)
	for _, e := range edges {
		countA[e.A+1]++
		countB[e.B+1]++
		g.degA[e.A] += float64(e.Weight)
		g.degB[e.B] += float64(e.Weight)
	}
	for i := 0; i < nA; i++ {
		countA[i+1] += countA[i]
	}
	for i := 0; i < nB; i++ {
		countB[i+1] += countB[i]
	}
	g.offA = countA
	g.offB = countB
	g.adjA = make([]int32, len(edges))
	g.adjB = make([]int32, len(edges))
	g.wA = make([]float32, len(edges))
	g.wB = make([]float32, len(edges))

	curA := make([]int32, nA)
	curB := make([]int32, nB)
	for _, e := range edges {
		pa := g.offA[e.A] + curA[e.A]
		g.adjA[pa] = e.B
		g.wA[pa] = e.Weight
		curA[e.A]++
		pb := g.offB[e.B] + curB[e.B]
		g.adjB[pb] = e.A
		g.wB[pb] = e.Weight
		curB[e.B]++
	}

	if len(edges) > 0 {
		ew := make([]float64, len(edges))
		for i, e := range edges {
			ew[i] = float64(e.Weight)
		}
		g.edgeSampler = alias.New(ew)
		g.noiseA = degreeNoiseTable(g.degA)
		g.noiseB = degreeNoiseTable(g.degB)
	}
	return g
}

// degreeNoiseTable builds the LINE/word2vec noise distribution
// P_n(v) ∝ deg(v)^0.75. Nodes of degree zero get a tiny floor weight so
// the table stays valid even in degenerate graphs; they are effectively
// never drawn on realistic inputs.
func degreeNoiseTable(deg []float64) *alias.Table {
	w := make([]float64, len(deg))
	any := false
	for i, d := range deg {
		if d > 0 {
			w[i] = math.Pow(d, 0.75)
			any = true
		}
	}
	if !any {
		return alias.NewUniform(len(deg))
	}
	return alias.New(w)
}

// Name returns the graph's label, e.g. "user-event".
func (g *Bipartite) Name() string { return g.name }

// NumA and NumB return the node-set sizes.
func (g *Bipartite) NumA() int { return g.nA }

// NumB returns the size of side B.
func (g *Bipartite) NumB() int { return g.nB }

// NumNodes returns the node count on the given side.
func (g *Bipartite) NumNodes(s Side) int {
	if s == SideA {
		return g.nA
	}
	return g.nB
}

// Symmetric reports whether both sides share one node ID space (the
// user-user graph).
func (g *Bipartite) Symmetric() bool { return g.symmetric }

// NumEdges returns the number of stored directed edges (a symmetric
// graph's undirected edges appear twice).
func (g *Bipartite) NumEdges() int { return len(g.edges) }

// Edges returns the frozen edge slice. Callers must not mutate it.
func (g *Bipartite) Edges() []Edge { return g.edges }

// Edge returns the i-th stored edge.
func (g *Bipartite) Edge(i int) Edge { return g.edges[i] }

// TotalWeight returns the sum of stored edge weights.
func (g *Bipartite) TotalWeight() float64 {
	if g.edgeSampler == nil {
		return 0
	}
	return g.edgeSampler.Total()
}

// Degree returns the weighted degree of node v on side s.
func (g *Bipartite) Degree(s Side, v int32) float64 {
	if s == SideA {
		return g.degA[v]
	}
	return g.degB[v]
}

// Neighbors returns the neighbor IDs and weights of node v on side s. The
// returned slices alias internal storage and must not be mutated.
func (g *Bipartite) Neighbors(s Side, v int32) ([]int32, []float32) {
	if s == SideA {
		return g.adjA[g.offA[v]:g.offA[v+1]], g.wA[g.offA[v]:g.offA[v+1]]
	}
	return g.adjB[g.offB[v]:g.offB[v+1]], g.wB[g.offB[v]:g.offB[v+1]]
}

// hasEdgeLinearMax is the row length below which HasEdge scans linearly:
// on short rows (the common case — mean degree is small on every relation
// graph) a branch-predictable scan beats binary search's data-dependent
// branches.
const hasEdgeLinearMax = 16

// HasEdge reports whether (a, b) is an edge. It runs on the training hot
// path (RejectObserved checks every sampled noise node), so it searches
// the sorted CSR row in place — a linear scan for short rows, binary
// search above hasEdgeLinearMax — instead of hashing into a duplicate
// neighbor-set structure.
func (g *Bipartite) HasEdge(a, b int32) bool {
	lo, hi := int(g.offA[a]), int(g.offA[a+1])
	if hi-lo <= hasEdgeLinearMax {
		for _, nb := range g.adjA[lo:hi] {
			if nb == b {
				return true
			}
		}
		return false
	}
	row := g.adjA[lo:hi]
	for len(row) > 0 {
		mid := len(row) / 2
		switch v := row[mid]; {
		case v == b:
			return true
		case v < b:
			row = row[mid+1:]
		default:
			row = row[:mid]
		}
	}
	return false
}

// SampleEdge draws an edge index with probability proportional to its
// weight — the paper's edge-sampling trick that makes SGD independent of
// weight variance. Panics on an empty graph.
func (g *Bipartite) SampleEdge(src *rng.Source) Edge {
	if g.edgeSampler == nil {
		panic("graph: " + g.name + ": SampleEdge on empty graph")
	}
	return g.edges[g.edgeSampler.Sample(src)]
}

// SampleNoise draws a node on side s from P_n(v) ∝ deg(v)^0.75.
func (g *Bipartite) SampleNoise(s Side, src *rng.Source) int32 {
	if g.edgeSampler == nil {
		panic("graph: " + g.name + ": SampleNoise on empty graph")
	}
	if s == SideA {
		return int32(g.noiseA.Sample(src))
	}
	return int32(g.noiseB.Sample(src))
}

// Validate performs internal consistency checks and returns an error
// describing the first violation found. It is used by tests and by data
// importers to fail fast on malformed inputs.
func (g *Bipartite) Validate() error {
	var sumA, sumB float64
	for _, d := range g.degA {
		sumA += d
	}
	for _, d := range g.degB {
		sumB += d
	}
	if math.Abs(sumA-sumB) > 1e-6*(1+math.Abs(sumA)) {
		return fmt.Errorf("graph %s: degree sums differ between sides: %v vs %v", g.name, sumA, sumB)
	}
	if int(g.offA[g.nA]) != len(g.edges) || int(g.offB[g.nB]) != len(g.edges) {
		return fmt.Errorf("graph %s: CSR offsets inconsistent with edge count", g.name)
	}
	// Side-A rows must be strictly ascending: HasEdge binary-searches them.
	for a := 0; a < g.nA; a++ {
		row := g.adjA[g.offA[a]:g.offA[a+1]]
		for i := 1; i < len(row); i++ {
			if row[i-1] >= row[i] {
				return fmt.Errorf("graph %s: adjacency row of A-node %d not strictly ascending at %d", g.name, a, i)
			}
		}
	}
	for _, e := range g.edges {
		if !g.HasEdge(e.A, e.B) {
			return fmt.Errorf("graph %s: edge (%d,%d) missing from neighbor sets", g.name, e.A, e.B)
		}
		if e.Weight <= 0 {
			return fmt.Errorf("graph %s: non-positive weight on (%d,%d)", g.name, e.A, e.B)
		}
	}
	if g.symmetric {
		for _, e := range g.edges {
			if !g.HasEdge(e.B, e.A) {
				return fmt.Errorf("graph %s: symmetric edge (%d,%d) lacks mirror", g.name, e.A, e.B)
			}
		}
	}
	return nil
}

// Stats summarizes a graph for logging and DESIGN/EXPERIMENTS reporting.
type Stats struct {
	Name        string
	NodesA      int
	NodesB      int
	Edges       int
	TotalWeight float64
	MeanDegreeA float64
	MeanDegreeB float64
}

// Stats returns summary statistics.
func (g *Bipartite) Stats() Stats {
	return Stats{
		Name:        g.name,
		NodesA:      g.nA,
		NodesB:      g.nB,
		Edges:       len(g.edges),
		TotalWeight: g.TotalWeight(),
		MeanDegreeA: float64(len(g.edges)) / float64(g.nA),
		MeanDegreeB: float64(len(g.edges)) / float64(g.nB),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: |A|=%d |B|=%d edges=%d weight=%.1f", s.Name, s.NodesA, s.NodesB, s.Edges, s.TotalWeight)
}
