package alias

import (
	"math"
	"testing"
	"testing/quick"

	"ebsn/internal/rng"
)

func TestSingleOutcome(t *testing.T) {
	tab := New([]float64{3.5})
	src := rng.New(1)
	for i := 0; i < 100; i++ {
		if tab.Sample(src) != 0 {
			t.Fatal("single-outcome table sampled nonzero index")
		}
	}
}

func TestZeroWeightNeverSampled(t *testing.T) {
	tab := New([]float64{1, 0, 1, 0})
	src := rng.New(2)
	for i := 0; i < 100000; i++ {
		v := tab.Sample(src)
		if v == 1 || v == 3 {
			t.Fatalf("sampled zero-weight outcome %d", v)
		}
	}
}

func TestEmpiricalDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	tab := New(weights)
	src := rng.New(3)
	const draws = 400000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[tab.Sample(src)]++
	}
	for i, w := range weights {
		want := w / 10 * draws
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("outcome %d: observed %d, expected ~%.0f", i, counts[i], want)
		}
	}
}

func TestHeavilySkewedDistribution(t *testing.T) {
	weights := []float64{1e-6, 1e6}
	tab := New(weights)
	src := rng.New(5)
	zeros := 0
	for i := 0; i < 100000; i++ {
		if tab.Sample(src) == 0 {
			zeros++
		}
	}
	// P(0) = 1e-12; with 1e5 draws seeing it even once would be remarkable.
	if zeros > 1 {
		t.Errorf("sampled probability-1e-12 outcome %d times", zeros)
	}
}

func TestUniform(t *testing.T) {
	tab := NewUniform(5)
	src := rng.New(7)
	const draws = 100000
	counts := make([]int, 5)
	for i := 0; i < draws; i++ {
		counts[tab.Sample(src)]++
	}
	want := float64(draws) / 5
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("outcome %d: observed %d, expected ~%.0f", i, c, want)
		}
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":    func() { New(nil) },
		"negative": func() { New([]float64{1, -1}) },
		"allZero":  func() { New([]float64{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTotalAndLen(t *testing.T) {
	tab := New([]float64{1, 2, 3})
	if tab.Len() != 3 {
		t.Errorf("Len = %d, want 3", tab.Len())
	}
	if tab.Total() != 6 {
		t.Errorf("Total = %v, want 6", tab.Total())
	}
}

// Property: for random weight vectors, every sampled index has positive
// weight and lies in range.
func TestSampleValidityProperty(t *testing.T) {
	f := func(raw []uint8, seed uint64) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			weights[i] = float64(r)
			total += weights[i]
		}
		if total == 0 {
			return true // all-zero is a documented panic, tested above
		}
		tab := New(weights)
		src := rng.New(seed)
		for i := 0; i < 200; i++ {
			v := tab.Sample(src)
			if v < 0 || v >= len(weights) || weights[v] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: empirical mean of sampled weights is close to the
// weight-squared expectation, a strong distributional check on random
// inputs. We compare the empirical frequency of the heaviest outcome to
// its true probability.
func TestHeaviestOutcomeFrequencyProperty(t *testing.T) {
	f := func(raw []uint8, seed uint64) bool {
		if len(raw) < 2 {
			return true
		}
		weights := make([]float64, len(raw))
		var total float64
		heaviest := 0
		for i, r := range raw {
			weights[i] = float64(r) + 0.01 // keep strictly positive
			total += weights[i]
			if weights[i] > weights[heaviest] {
				heaviest = i
			}
		}
		tab := New(weights)
		src := rng.New(seed)
		const draws = 20000
		hit := 0
		for i := 0; i < draws; i++ {
			if tab.Sample(src) == heaviest {
				hit++
			}
		}
		p := weights[heaviest] / total
		tol := 6*math.Sqrt(p*(1-p)*draws) + 1
		return math.Abs(float64(hit)-p*draws) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSample(b *testing.B) {
	weights := make([]float64, 100000)
	for i := range weights {
		weights[i] = float64(i%97) + 1
	}
	tab := New(weights)
	src := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Sample(src)
	}
}

// BenchmarkNaiveWeightedScan is the ablation point of comparison: linear
// cumulative scan per draw, which alias tables replace.
func BenchmarkNaiveWeightedScan(b *testing.B) {
	weights := make([]float64, 100000)
	var total float64
	for i := range weights {
		weights[i] = float64(i%97) + 1
		total += weights[i]
	}
	src := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := src.Float64() * total
		var cum float64
		for j, w := range weights {
			cum += w
			if cum >= u {
				_ = j
				break
			}
		}
	}
}
