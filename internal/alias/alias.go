// Package alias implements Walker's alias method for O(1) sampling from an
// arbitrary discrete distribution. GEM uses alias tables in two hot places:
// drawing a positive edge with probability proportional to its weight
// (LINE-style edge sampling), and drawing noise nodes from the degree^0.75
// distribution of the degree-based sampler.
package alias

import "ebsn/internal/rng"

// Table is an immutable alias table over n outcomes. Construction is O(n);
// each Sample is O(1). A Table is safe for concurrent Sample calls because
// sampling only reads.
type Table struct {
	prob  []float64
	alias []int32
	total float64
}

// New builds a table from the given non-negative weights. At least one
// weight must be positive. New copies nothing from weights after it
// returns.
func New(weights []float64) *Table {
	n := len(weights)
	if n == 0 {
		panic("alias: empty weight vector")
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			panic("alias: negative weight")
		}
		_ = i
		total += w
	}
	if total <= 0 {
		panic("alias: all weights are zero")
	}

	t := &Table{
		prob:  make([]float64, n),
		alias: make([]int32, n),
		total: total,
	}

	// Scaled probabilities; target average 1.0 per slot.
	scaled := make([]float64, n)
	scale := float64(n) / total
	for i, w := range weights {
		scaled[i] = w * scale
	}

	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}

	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]

		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] = scaled[l] - (1 - scaled[s])
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Residual slots are exactly 1 up to floating-point error.
	for _, l := range large {
		t.prob[l] = 1
	}
	for _, s := range small {
		t.prob[s] = 1
	}
	return t
}

// NewUniform builds a table equivalent to uniform sampling over n
// outcomes. It exists so callers can treat "uniform" as just another noise
// distribution without branching.
func NewUniform(n int) *Table {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return New(w)
}

// Len returns the number of outcomes.
func (t *Table) Len() int { return len(t.prob) }

// Total returns the sum of the weights the table was built from.
func (t *Table) Total() float64 { return t.total }

// Sample draws one outcome index.
func (t *Table) Sample(src *rng.Source) int {
	i := src.Intn(len(t.prob))
	if src.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}
