// Package text implements the content pipeline for the event-content
// graph: tokenization, stopword filtering, vocabulary construction with
// document-frequency cutoffs, and the TF-IDF weighting the paper uses for
// event-word edges (Definition 6).
package text

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Tokenize lowercases s and splits it on any non-letter, non-digit rune.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// defaultStopwords is a small English stopword list; the synthetic corpus
// generator plants a handful of these as function words so the filter has
// real work to do.
var defaultStopwords = map[string]struct{}{
	"a": {}, "an": {}, "and": {}, "are": {}, "as": {}, "at": {}, "be": {},
	"by": {}, "for": {}, "from": {}, "has": {}, "he": {}, "in": {}, "is": {},
	"it": {}, "its": {}, "of": {}, "on": {}, "or": {}, "that": {}, "the": {},
	"to": {}, "was": {}, "we": {}, "were": {}, "will": {}, "with": {}, "you": {},
	"this": {}, "not": {}, "but": {}, "they": {}, "their": {}, "our": {},
}

// IsStopword reports whether w is in the built-in stopword list.
func IsStopword(w string) bool {
	_, ok := defaultStopwords[w]
	return ok
}

// Vocabulary maps word strings to dense int32 IDs and records document
// frequencies for IDF computation.
type Vocabulary struct {
	ids   map[string]int32
	words []string
	df    []int32
	docs  int
}

// VocabConfig controls vocabulary construction.
type VocabConfig struct {
	// MinDocFreq drops words appearing in fewer documents than this.
	MinDocFreq int
	// MaxDocFraction drops words appearing in more than this fraction of
	// documents (corpus-specific stopwords). Zero means no ceiling.
	MaxDocFraction float64
	// KeepStopwords retains built-in stopwords if true.
	KeepStopwords bool
}

// BuildVocabulary scans tokenized documents and returns the retained
// vocabulary. Word IDs are assigned in decreasing document-frequency order
// (ties broken lexicographically) so that ID 0 is the most common retained
// word — a convenient property for debugging and for Zipf checks in tests.
func BuildVocabulary(docs [][]string, cfg VocabConfig) *Vocabulary {
	if cfg.MinDocFreq < 1 {
		cfg.MinDocFreq = 1
	}
	df := make(map[string]int32)
	for _, doc := range docs {
		seen := make(map[string]struct{}, len(doc))
		for _, w := range doc {
			if w == "" {
				continue
			}
			if !cfg.KeepStopwords && IsStopword(w) {
				continue
			}
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			df[w]++
		}
	}
	maxDF := int32(math.MaxInt32)
	if cfg.MaxDocFraction > 0 {
		maxDF = int32(cfg.MaxDocFraction * float64(len(docs)))
	}
	type wf struct {
		w string
		f int32
	}
	var kept []wf
	for w, f := range df {
		if f >= int32(cfg.MinDocFreq) && f <= maxDF {
			kept = append(kept, wf{w, f})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].f != kept[j].f {
			return kept[i].f > kept[j].f
		}
		return kept[i].w < kept[j].w
	})
	v := &Vocabulary{
		ids:   make(map[string]int32, len(kept)),
		words: make([]string, len(kept)),
		df:    make([]int32, len(kept)),
		docs:  len(docs),
	}
	for i, e := range kept {
		v.ids[e.w] = int32(i)
		v.words[i] = e.w
		v.df[i] = e.f
	}
	return v
}

// Size returns the number of retained words.
func (v *Vocabulary) Size() int { return len(v.words) }

// NumDocs returns the corpus size the vocabulary was built from.
func (v *Vocabulary) NumDocs() int { return v.docs }

// ID returns the word's ID, or -1 if it was not retained.
func (v *Vocabulary) ID(w string) int32 {
	if id, ok := v.ids[w]; ok {
		return id
	}
	return -1
}

// Word returns the string for a word ID.
func (v *Vocabulary) Word(id int32) string { return v.words[id] }

// DocFreq returns the document frequency of a word ID.
func (v *Vocabulary) DocFreq(id int32) int32 { return v.df[id] }

// IDF returns the smoothed inverse document frequency
// log(1 + N/df) of a word ID.
func (v *Vocabulary) IDF(id int32) float64 {
	return math.Log(1 + float64(v.docs)/float64(v.df[id]))
}

// WordWeight is one TF-IDF-weighted vocabulary entry of a document.
type WordWeight struct {
	Word   int32
	Weight float32
}

// TFIDF converts one tokenized document into TF-IDF weights over the
// vocabulary. Term frequency is raw count normalized by document length;
// out-of-vocabulary tokens are skipped. The result is sorted by word ID.
func (v *Vocabulary) TFIDF(doc []string) []WordWeight {
	counts := make(map[int32]int)
	total := 0
	for _, w := range doc {
		id := v.ID(w)
		if id < 0 {
			continue
		}
		counts[id]++
		total++
	}
	if total == 0 {
		return nil
	}
	out := make([]WordWeight, 0, len(counts))
	for id, c := range counts {
		tf := float64(c) / float64(total)
		out = append(out, WordWeight{Word: id, Weight: float32(tf * v.IDF(id))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Word < out[j].Word })
	return out
}
