package text

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzTokenize asserts tokenizer invariants on arbitrary input: tokens
// are non-empty, lowercase, and contain no separator runes.
func FuzzTokenize(f *testing.F) {
	f.Add("Jazz Night @ Blue-Note, 8pm!")
	f.Add("")
	f.Add("日本語のイベント 🎉 mixed WITH ascii")
	f.Add("a\x00b\xff\xfe")
	f.Fuzz(func(t *testing.T, s string) {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("separator rune %q survived in token %q", r, tok)
				}
			}
			// Lowercasing is idempotent. (Some uppercase-category runes,
			// e.g. U+2107 EULER CONSTANT, have no lowercase mapping and
			// legitimately survive ToLower — found by this fuzzer.)
			if tok != strings.ToLower(tok) {
				t.Fatalf("token %q not lowercase-stable", tok)
			}
		}
	})
}

// FuzzTFIDF asserts that arbitrary documents never produce non-positive
// weights, duplicate word IDs, or out-of-order entries.
func FuzzTFIDF(f *testing.F) {
	docs := [][]string{
		{"jazz", "night"},
		{"jazz", "festival", "music"},
		{"rock", "music"},
	}
	vocab := BuildVocabulary(docs, VocabConfig{MinDocFreq: 1})
	f.Add("jazz music music unknown")
	f.Add("")
	f.Add("the the the")
	f.Fuzz(func(t *testing.T, s string) {
		ws := vocab.TFIDF(Tokenize(s))
		prev := int32(-1)
		for _, e := range ws {
			if e.Weight <= 0 {
				t.Fatalf("non-positive weight %v", e.Weight)
			}
			if e.Word <= prev {
				t.Fatalf("unsorted or duplicate word IDs: %d after %d", e.Word, prev)
			}
			if int(e.Word) >= vocab.Size() {
				t.Fatalf("word ID %d out of vocabulary", e.Word)
			}
			prev = e.Word
		}
	})
}
