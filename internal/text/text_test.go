package text

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"rock-climbing @ 7pm", []string{"rock", "climbing", "7pm"}},
		{"", nil},
		{"   ", nil},
		{"ONE two Three", []string{"one", "two", "three"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") {
		t.Error("'the' not a stopword")
	}
	if IsStopword("concert") {
		t.Error("'concert' flagged as stopword")
	}
}

func docs() [][]string {
	return [][]string{
		{"jazz", "concert", "the", "night"},
		{"jazz", "festival", "music"},
		{"rock", "concert", "music", "music"},
		{"poetry", "reading"},
	}
}

func TestBuildVocabularyDropsStopwords(t *testing.T) {
	v := BuildVocabulary(docs(), VocabConfig{MinDocFreq: 1})
	if v.ID("the") != -1 {
		t.Error("stopword retained")
	}
	if v.ID("jazz") < 0 {
		t.Error("'jazz' dropped")
	}
}

func TestBuildVocabularyMinDocFreq(t *testing.T) {
	v := BuildVocabulary(docs(), VocabConfig{MinDocFreq: 2})
	for _, w := range []string{"jazz", "concert", "music"} {
		if v.ID(w) < 0 {
			t.Errorf("df>=2 word %q dropped", w)
		}
	}
	for _, w := range []string{"festival", "rock", "poetry"} {
		if v.ID(w) >= 0 {
			t.Errorf("df=1 word %q retained", w)
		}
	}
}

func TestBuildVocabularyMaxDocFraction(t *testing.T) {
	many := make([][]string, 10)
	for i := range many {
		many[i] = []string{"common", "word"}
	}
	many[0] = append(many[0], "rare")
	v := BuildVocabulary(many, VocabConfig{MinDocFreq: 1, MaxDocFraction: 0.5})
	if v.ID("common") != -1 {
		t.Error("over-frequent word retained")
	}
	if v.ID("rare") < 0 {
		t.Error("rare word dropped")
	}
}

func TestVocabularyIDOrderByFrequency(t *testing.T) {
	v := BuildVocabulary(docs(), VocabConfig{MinDocFreq: 1})
	// "concert", "jazz" and "music" each have df=2, everything else df=1.
	// IDs 0..2 must be those three (lexicographic ties).
	got := []string{v.Word(0), v.Word(1), v.Word(2)}
	want := []string{"concert", "jazz", "music"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("top IDs = %v, want %v", got, want)
	}
}

func TestDocFreqAndIDF(t *testing.T) {
	v := BuildVocabulary(docs(), VocabConfig{MinDocFreq: 1})
	id := v.ID("music")
	if v.DocFreq(id) != 2 {
		t.Errorf("df(music) = %d, want 2", v.DocFreq(id))
	}
	want := math.Log(1 + 4.0/2.0)
	if math.Abs(v.IDF(id)-want) > 1e-12 {
		t.Errorf("IDF(music) = %v, want %v", v.IDF(id), want)
	}
	if v.NumDocs() != 4 {
		t.Errorf("NumDocs = %d", v.NumDocs())
	}
}

func TestTFIDF(t *testing.T) {
	v := BuildVocabulary(docs(), VocabConfig{MinDocFreq: 1})
	ws := v.TFIDF([]string{"music", "music", "jazz", "unknownword"})
	if len(ws) != 2 {
		t.Fatalf("TFIDF entries = %d, want 2", len(ws))
	}
	// Entries are sorted by word ID; jazz (df 2) and music (df 2) both kept.
	var musicW, jazzW float32
	for _, e := range ws {
		switch v.Word(e.Word) {
		case "music":
			musicW = e.Weight
		case "jazz":
			jazzW = e.Weight
		}
	}
	// music tf = 2/3, jazz tf = 1/3, same IDF -> music weight is double.
	if math.Abs(float64(musicW/jazzW)-2) > 1e-5 {
		t.Errorf("music/jazz weight ratio = %v, want 2", musicW/jazzW)
	}
}

func TestTFIDFEmptyAndOOV(t *testing.T) {
	v := BuildVocabulary(docs(), VocabConfig{MinDocFreq: 1})
	if got := v.TFIDF(nil); got != nil {
		t.Errorf("TFIDF(nil) = %v", got)
	}
	if got := v.TFIDF([]string{"zzz", "qqq"}); got != nil {
		t.Errorf("TFIDF(all-OOV) = %v", got)
	}
}

func TestTFIDFWeightsPositiveAndSortedProperty(t *testing.T) {
	v := BuildVocabulary(docs(), VocabConfig{MinDocFreq: 1})
	words := []string{"jazz", "concert", "night", "festival", "music", "rock", "poetry", "reading"}
	f := func(picks []uint8) bool {
		var doc []string
		for _, p := range picks {
			doc = append(doc, words[int(p)%len(words)])
		}
		ws := v.TFIDF(doc)
		prev := int32(-1)
		for _, e := range ws {
			if e.Weight <= 0 || e.Word <= prev {
				return false
			}
			prev = e.Word
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHigherTFMeansHigherWeightProperty(t *testing.T) {
	v := BuildVocabulary(docs(), VocabConfig{MinDocFreq: 1})
	// Within one document, a word with strictly higher count and equal IDF
	// must get a strictly higher weight. jazz and music have equal df.
	doc := []string{"music", "music", "music", "jazz"}
	ws := v.TFIDF(doc)
	var musicW, jazzW float32
	for _, e := range ws {
		switch v.Word(e.Word) {
		case "music":
			musicW = e.Weight
		case "jazz":
			jazzW = e.Weight
		}
	}
	if musicW <= jazzW {
		t.Errorf("weight(music)=%v <= weight(jazz)=%v despite higher tf", musicW, jazzW)
	}
}
