package text_test

import (
	"fmt"

	"ebsn/internal/text"
)

func ExampleTokenize() {
	fmt.Println(text.Tokenize("Jazz Night @ Blue-Note, 8pm!"))
	// Output: [jazz night blue note 8pm]
}

func ExampleBuildVocabulary() {
	docs := [][]string{
		text.Tokenize("jazz night downtown"),
		text.Tokenize("jazz brunch and poetry"),
		text.Tokenize("the poetry reading"),
	}
	vocab := text.BuildVocabulary(docs, text.VocabConfig{MinDocFreq: 2})
	// "jazz" and "poetry" appear in two documents each; everything else
	// is dropped (df 1) or a stopword ("and", "the").
	fmt.Println(vocab.Size())
	fmt.Println(vocab.Word(0), vocab.Word(1))
	// Output:
	// 2
	// jazz poetry
}
