package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

// randQuantSlice returns n int8 values spanning the full quantized range.
func randQuantSlice(r *rand.Rand, n int) []int8 {
	v := make([]int8, n)
	for i := range v {
		v[i] = int8(r.Intn(255) - 127)
	}
	return v
}

// dotI8Scalar is the straight-line reference for the int8 kernels.
func dotI8Scalar(a, b []int8) int32 {
	var s int32
	for i := range a {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

// TestDotPanelBitIdenticalToDot sweeps ragged shapes — every k remainder
// 0..67, batch sizes around the 4-query micro-kernel boundary, and odd
// row counts — and requires every output bit-identical to the
// corresponding Dot call. The batched ta query path inherits its
// batched-vs-sequential bit-identity from this property.
func TestDotPanelBitIdenticalToDot(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for k := 0; k <= 67; k++ {
		for _, b := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9} {
			rows := 1 + r.Intn(9)
			qs := randSlice(r, b*k)
			data := randSlice(r, rows*k)
			out := make([]float32, b*rows)
			for i := range out {
				out[i] = float32(math.NaN()) // poison: every cell must be written
			}
			if k == 0 {
				DotPanel(qs, b, nil, 0, out)
			} else {
				DotPanel(qs, b, data, k, out)
			}
			for q := 0; q < b; q++ {
				qv := qs[q*k : (q+1)*k]
				for row := 0; row < rows; row++ {
					var want float32
					if k > 0 {
						want = Dot(qv, data[row*k:(row+1)*k])
					}
					if got := out[q*rows+row]; got != want && !(k == 0 && got == 0) {
						t.Fatalf("k=%d b=%d q=%d row=%d: DotPanel=%v not bit-identical to Dot=%v",
							k, b, q, row, got, want)
					}
				}
			}
		}
	}
}

func TestDotPanelPanicsOnMismatch(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"panel", func() { DotPanel(make([]float32, 7), 2, make([]float32, 8), 4, make([]float32, 4)) }},
		{"data", func() { DotPanel(make([]float32, 8), 2, make([]float32, 9), 4, make([]float32, 4)) }},
		{"out", func() { DotPanel(make([]float32, 8), 2, make([]float32, 8), 4, make([]float32, 3)) }},
		{"panelI8", func() { DotPanelI8(make([]int8, 7), 2, make([]int8, 8), 4, make([]int32, 4)) }},
		{"dataI8", func() { DotPanelI8(make([]int8, 8), 2, make([]int8, 9), 4, make([]int32, 4)) }},
		{"outI8", func() { DotPanelI8(make([]int8, 8), 2, make([]int8, 8), 4, make([]int32, 3)) }},
		{"batchI8", func() { DotBatchI8(make([]int8, 3), make([]int8, 8), 4, make([]int32, 2)) }},
		{"dotI8", func() { DotI8(make([]int8, 3), make([]int8, 4)) }},
		{"quantize", func() { QuantizeRow(make([]float32, 3), make([]int8, 4)) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

// TestDotI8MatchesScalarAllRemainders checks the widening int8 kernel
// against the scalar int32 reference — integer accumulation is exact,
// so the comparison is ==.
func TestDotI8MatchesScalarAllRemainders(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	for n := 0; n <= 67; n++ {
		for trial := 0; trial < 8; trial++ {
			a := randQuantSlice(r, n)
			b := randQuantSlice(r, n)
			if got, want := DotI8(a, b), dotI8Scalar(a, b); got != want {
				t.Fatalf("n=%d trial=%d: DotI8=%d scalar=%d", n, trial, got, want)
			}
		}
	}
}

// TestDotPanelI8MatchesScalar checks the int8 panel and batch kernels
// cell-by-cell against the scalar reference across ragged shapes.
func TestDotPanelI8MatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	for k := 1; k <= 67; k++ {
		for _, b := range []int{1, 3, 4, 6, 8, 9} {
			rows := 1 + r.Intn(9)
			qs := randQuantSlice(r, b*k)
			data := randQuantSlice(r, rows*k)
			out := make([]int32, b*rows)
			DotPanelI8(qs, b, data, k, out)
			batchOut := make([]int32, rows)
			for q := 0; q < b; q++ {
				qv := qs[q*k : (q+1)*k]
				DotBatchI8(qv, data, k, batchOut)
				for row := 0; row < rows; row++ {
					want := dotI8Scalar(qv, data[row*k:(row+1)*k])
					if out[q*rows+row] != want {
						t.Fatalf("k=%d b=%d q=%d row=%d: DotPanelI8=%d scalar=%d",
							k, b, q, row, out[q*rows+row], want)
					}
					if batchOut[row] != want {
						t.Fatalf("k=%d b=%d q=%d row=%d: DotBatchI8=%d scalar=%d",
							k, b, q, row, batchOut[row], want)
					}
				}
			}
		}
	}
}

// TestQuantizeRowRoundTrip checks the per-row scale contract: every
// dequantized element is within scale/2 of the original, the quantized
// range is [-127, 127], and an all-zero row quantizes to zeros with
// scale 0.
func TestQuantizeRowRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	for n := 0; n <= 67; n++ {
		src := randSlice(r, n)
		dst := make([]int8, n)
		scale := QuantizeRow(src, dst)
		for i := range src {
			if dst[i] < -127 || dst[i] > 127 {
				t.Fatalf("n=%d i=%d: quantized value %d out of range", n, i, dst[i])
			}
			back := scale * float32(dst[i])
			if math.Abs(float64(back-src[i])) > float64(scale)/2+1e-7 {
				t.Fatalf("n=%d i=%d: dequantized %v too far from %v (scale %v)", n, i, back, src[i], scale)
			}
		}
	}
	zeros := make([]float32, 8)
	dst := []int8{1, 2, 3, 4, 5, 6, 7, 8}
	if scale := QuantizeRow(zeros, dst); scale != 0 {
		t.Fatalf("all-zero row: scale=%v, want 0", scale)
	}
	for i, q := range dst {
		if q != 0 {
			t.Fatalf("all-zero row: dst[%d]=%d, want 0", i, q)
		}
	}
}

// TestPanelMicroKernelMatchesPortable compares the dispatched 4-query
// micro-kernels (SSE2 assembly on amd64) cell-for-cell against the
// portable Go implementations across ragged k and row counts. The
// float comparison is bit-exact — the assembly must preserve
// dotUnrolled's accumulation order, not merely approximate it.
func TestPanelMicroKernelMatchesPortable(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for k := 1; k <= 67; k++ {
		rows := 1 + r.Intn(7)
		q0, q1, q2, q3 := randSlice(r, k), randSlice(r, k), randSlice(r, k), randSlice(r, k)
		data := randSlice(r, rows*k)
		got := make([][]float32, 4)
		want := make([][]float32, 4)
		for j := range got {
			got[j] = make([]float32, rows)
			want[j] = make([]float32, rows)
		}
		panelRows4(q0, q1, q2, q3, data, k, got[0], got[1], got[2], got[3])
		panelRows4Go(q0, q1, q2, q3, data, k, want[0], want[1], want[2], want[3])
		for j := 0; j < 4; j++ {
			for row := 0; row < rows; row++ {
				if got[j][row] != want[j][row] {
					t.Fatalf("k=%d q=%d row=%d: kernel=%v portable=%v", k, j, row, got[j][row], want[j][row])
				}
			}
		}
		i0, i1, i2, i3 := randQuantSlice(r, k), randQuantSlice(r, k), randQuantSlice(r, k), randQuantSlice(r, k)
		idata := randQuantSlice(r, rows*k)
		igot := make([][]int32, 4)
		iwant := make([][]int32, 4)
		for j := range igot {
			igot[j] = make([]int32, rows)
			iwant[j] = make([]int32, rows)
		}
		panelRowsI8(i0, i1, i2, i3, idata, k, igot[0], igot[1], igot[2], igot[3])
		panelRowsI8Go(i0, i1, i2, i3, idata, k, iwant[0], iwant[1], iwant[2], iwant[3])
		for j := 0; j < 4; j++ {
			for row := 0; row < rows; row++ {
				if igot[j][row] != iwant[j][row] {
					t.Fatalf("int8 k=%d q=%d row=%d: kernel=%d portable=%d", k, j, row, igot[j][row], iwant[j][row])
				}
			}
		}
	}
}

// BenchmarkDotPanel streams a 4096-row candidate block for an 8-query
// panel — the batched-query hot loop. CI greps its output for
// "0 allocs/op".
func BenchmarkDotPanel(b *testing.B) {
	r := rand.New(rand.NewSource(65))
	const rows = 4096
	const k = 60
	for _, nq := range []int{1, 4, 8} {
		qs := randSlice(r, nq*k)
		data := randSlice(r, rows*k)
		out := make([]float32, nq*rows)
		b.Run(benchName("b", nq), func(b *testing.B) {
			b.SetBytes(int64(4 * k * rows * (nq + 1)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				DotPanel(qs, nq, data, k, out)
			}
			sinkF32 = out[0]
		})
	}
}

// BenchmarkDotPanelI8 is the quantized counterpart of BenchmarkDotPanel:
// same shape, a quarter of the candidate memory traffic.
func BenchmarkDotPanelI8(b *testing.B) {
	r := rand.New(rand.NewSource(66))
	const rows = 4096
	const k = 60
	for _, nq := range []int{1, 4, 8} {
		qs := randQuantSlice(r, nq*k)
		data := randQuantSlice(r, rows*k)
		out := make([]int32, nq*rows)
		b.Run(benchName("b", nq), func(b *testing.B) {
			b.SetBytes(int64(k * rows * (nq + 1)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				DotPanelI8(qs, nq, data, k, out)
			}
			sinkI32 = out[0]
		})
	}
}

var sinkI32 int32
