// SSE2 micro-kernels for the batched query panel. Baseline amd64
// instructions only (no AVX/FMA), so there is no CPUID dispatch and —
// critically — no fused multiply-add: MULPS/ADDPS round each lane
// exactly like the scalar MULSS/ADDSS pair, which is what keeps the
// panel bit-identical to dotUnrolled (see panel.go).

#include "textflag.h"

// func dotPanelRows4(q0, q1, q2, q3 *float32, k int, data *float32, rows int, o0, o1, o2, o3 *float32)
//
// For each of rows candidate rows d (packed row-major, stride k), load
// d once and accumulate four dot products q0·d .. q3·d. The packed
// accumulator lanes are exactly dotUnrolled's s0..s3; the reduction
// performs (s0+s1)+(s2+s3) with scalar ADDSS in that order, then the
// tail elements are folded in scalarly — the same sequence of IEEE
// operations as the pure-Go kernel, so the results match bit for bit.
TEXT ·dotPanelRows4(SB), NOSPLIT, $0-88
	MOVQ q0+0(FP), R8
	MOVQ q1+8(FP), R9
	MOVQ q2+16(FP), R10
	MOVQ q3+24(FP), R11
	MOVQ k+32(FP), CX
	MOVQ data+40(FP), SI
	MOVQ rows+48(FP), DI
	MOVQ o0+56(FP), R12
	MOVQ o1+64(FP), R13
	MOVQ o2+72(FP), R14
	MOVQ o3+80(FP), R15
	MOVQ CX, BX
	ANDQ $-4, BX          // n4 = k &^ 3

rowloop:
	TESTQ DI, DI
	JZ   done
	XORPS X0, X0          // lanes are q0's s0..s3
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORQ AX, AX           // i = 0
	TESTQ BX, BX
	JZ   vecdone

vec:
	MOVUPS (SI)(AX*4), X4  // d[i:i+4], shared by all four queries
	MOVUPS (R8)(AX*4), X5
	MULPS  X4, X5
	ADDPS  X5, X0
	MOVUPS (R9)(AX*4), X5
	MULPS  X4, X5
	ADDPS  X5, X1
	MOVUPS (R10)(AX*4), X5
	MULPS  X4, X5
	ADDPS  X5, X2
	MOVUPS (R11)(AX*4), X5
	MULPS  X4, X5
	ADDPS  X5, X3
	ADDQ   $4, AX
	CMPQ   AX, BX
	JL     vec

vecdone:
	// Reduce each accumulator to lane 0 as (s0+s1)+(s2+s3).
	MOVAPS X0, X5
	SHUFPS $0x55, X5, X5   // all lanes = s1
	MOVAPS X0, X6
	SHUFPS $0xAA, X6, X6   // all lanes = s2
	MOVAPS X0, X7
	SHUFPS $0xFF, X7, X7   // all lanes = s3
	ADDSS  X5, X0          // s0+s1
	ADDSS  X7, X6          // s2+s3
	ADDSS  X6, X0

	MOVAPS X1, X5
	SHUFPS $0x55, X5, X5
	MOVAPS X1, X6
	SHUFPS $0xAA, X6, X6
	MOVAPS X1, X7
	SHUFPS $0xFF, X7, X7
	ADDSS  X5, X1
	ADDSS  X7, X6
	ADDSS  X6, X1

	MOVAPS X2, X5
	SHUFPS $0x55, X5, X5
	MOVAPS X2, X6
	SHUFPS $0xAA, X6, X6
	MOVAPS X2, X7
	SHUFPS $0xFF, X7, X7
	ADDSS  X5, X2
	ADDSS  X7, X6
	ADDSS  X6, X2

	MOVAPS X3, X5
	SHUFPS $0x55, X5, X5
	MOVAPS X3, X6
	SHUFPS $0xAA, X6, X6
	MOVAPS X3, X7
	SHUFPS $0xFF, X7, X7
	ADDSS  X5, X3
	ADDSS  X7, X6
	ADDSS  X6, X3

	CMPQ AX, CX
	JGE  remdone

rem:
	MOVSS (SI)(AX*4), X4
	MOVSS (R8)(AX*4), X5
	MULSS X4, X5
	ADDSS X5, X0
	MOVSS (R9)(AX*4), X5
	MULSS X4, X5
	ADDSS X5, X1
	MOVSS (R10)(AX*4), X5
	MULSS X4, X5
	ADDSS X5, X2
	MOVSS (R11)(AX*4), X5
	MULSS X4, X5
	ADDSS X5, X3
	INCQ  AX
	CMPQ  AX, CX
	JL    rem

remdone:
	MOVSS X0, (R12)
	MOVSS X1, (R13)
	MOVSS X2, (R14)
	MOVSS X3, (R15)
	ADDQ  $4, R12
	ADDQ  $4, R13
	ADDQ  $4, R14
	ADDQ  $4, R15
	LEAQ  (SI)(CX*4), SI   // next candidate row
	DECQ  DI
	JMP   rowloop

done:
	RET

// func dotPanelRowsI8(q0, q1, q2, q3 *int8, k int, data *int8, rows int, o0, o1, o2, o3 *int32)
//
// int8 panel: widen 8 candidate bytes to int16 once (PUNPCKLBW+PSRAW),
// then one PMADDWL per query accumulates 8 widening products into 4
// int32 lanes. Integer arithmetic is exact in any association, so no
// ordering discipline is needed — only that the lane sums cannot
// overflow, which holds for k well beyond any embedding dimension.
TEXT ·dotPanelRowsI8(SB), NOSPLIT, $0-88
	MOVQ q0+0(FP), R8
	MOVQ q1+8(FP), R9
	MOVQ q2+16(FP), R10
	MOVQ q3+24(FP), R11
	MOVQ k+32(FP), CX
	MOVQ data+40(FP), SI
	MOVQ rows+48(FP), DI
	MOVQ o0+56(FP), R12
	MOVQ o1+64(FP), R13
	MOVQ o2+72(FP), R14
	MOVQ o3+80(FP), R15

i8rowloop:
	TESTQ DI, DI
	JZ    i8done
	PXOR  X0, X0
	PXOR  X1, X1
	PXOR  X2, X2
	PXOR  X3, X3
	XORQ  AX, AX
	MOVQ  CX, BX
	ANDQ  $-8, BX          // n8 = k &^ 7 (BX is reused by the tail loop)
	TESTQ BX, BX
	JZ    i8vecdone

i8vec:
	MOVQ      (SI)(AX*1), X4
	PUNPCKLBW X4, X4
	PSRAW     $8, X4       // 8 sign-extended candidate words
	MOVQ      (R8)(AX*1), X5
	PUNPCKLBW X5, X5
	PSRAW     $8, X5
	PMADDWL   X4, X5
	PADDD     X5, X0
	MOVQ      (R9)(AX*1), X5
	PUNPCKLBW X5, X5
	PSRAW     $8, X5
	PMADDWL   X4, X5
	PADDD     X5, X1
	MOVQ      (R10)(AX*1), X5
	PUNPCKLBW X5, X5
	PSRAW     $8, X5
	PMADDWL   X4, X5
	PADDD     X5, X2
	MOVQ      (R11)(AX*1), X5
	PUNPCKLBW X5, X5
	PSRAW     $8, X5
	PMADDWL   X4, X5
	PADDD     X5, X3
	ADDQ      $8, AX
	CMPQ      AX, BX
	JL        i8vec

i8vecdone:
	CMPQ AX, CX
	JGE  i8reduce

i8rem:
	MOVBQSX (SI)(AX*1), DX
	MOVBQSX (R8)(AX*1), BX
	IMULQ   DX, BX
	MOVL    BX, X5
	PADDD   X5, X0
	MOVBQSX (R9)(AX*1), BX
	IMULQ   DX, BX
	MOVL    BX, X5
	PADDD   X5, X1
	MOVBQSX (R10)(AX*1), BX
	IMULQ   DX, BX
	MOVL    BX, X5
	PADDD   X5, X2
	MOVBQSX (R11)(AX*1), BX
	IMULQ   DX, BX
	MOVL    BX, X5
	PADDD   X5, X3
	INCQ    AX
	CMPQ    AX, CX
	JL      i8rem

i8reduce:
	PSHUFD $0x4E, X0, X5   // [s2,s3,s0,s1]
	PADDD  X5, X0
	PSHUFD $0x55, X0, X5   // lane1 everywhere
	PADDD  X5, X0
	PSHUFD $0x4E, X1, X5
	PADDD  X5, X1
	PSHUFD $0x55, X1, X5
	PADDD  X5, X1
	PSHUFD $0x4E, X2, X5
	PADDD  X5, X2
	PSHUFD $0x55, X2, X5
	PADDD  X5, X2
	PSHUFD $0x4E, X3, X5
	PADDD  X5, X3
	PSHUFD $0x55, X3, X5
	PADDD  X5, X3

	MOVL X0, (R12)
	MOVL X1, (R13)
	MOVL X2, (R14)
	MOVL X3, (R15)
	ADDQ $4, R12
	ADDQ $4, R13
	ADDQ $4, R14
	ADDQ $4, R15
	ADDQ CX, SI            // next candidate row
	DECQ DI
	JMP  i8rowloop

i8done:
	RET
