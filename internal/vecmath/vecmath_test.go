package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	cases := []struct {
		a, b []float32
		want float32
	}{
		{[]float32{}, []float32{}, 0},
		{[]float32{1}, []float32{2}, 2},
		{[]float32{1, 2, 3}, []float32{4, 5, 6}, 32},
		{[]float32{-1, 0, 1}, []float32{1, 100, 1}, 0},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); got != c.want {
			t.Errorf("Dot(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot did not panic on length mismatch")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestAxpy(t *testing.T) {
	dst := []float32{1, 2, 3}
	Axpy(2, []float32{1, 1, 1}, dst)
	want := []float32{3, 4, 5}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("Axpy result %v, want %v", dst, want)
		}
	}
}

func TestAxpyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Axpy did not panic on length mismatch")
		}
	}()
	Axpy(1, []float32{1, 2}, []float32{1})
}

func TestScale(t *testing.T) {
	v := []float32{1, -2, 0.5}
	Scale(-2, v)
	want := []float32{-2, 4, -1}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("Scale result %v, want %v", v, want)
		}
	}
}

func TestNormAndSumSq(t *testing.T) {
	v := []float32{3, 4}
	if got := SumSq(v); got != 25 {
		t.Errorf("SumSq = %v, want 25", got)
	}
	if got := Norm(v); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestClampNonNeg(t *testing.T) {
	v := []float32{-1, 0, 2, -0.001}
	ClampNonNeg(v)
	want := []float32{0, 0, 2, 0}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("ClampNonNeg result %v, want %v", v, want)
		}
	}
}

func TestSigmoidEndpointsAndMidpoint(t *testing.T) {
	if got := Sigmoid(0); math.Abs(float64(got)-0.5) > 1e-7 {
		t.Errorf("Sigmoid(0) = %v, want 0.5", got)
	}
	if got := Sigmoid(100); got < 0.9999 {
		t.Errorf("Sigmoid(100) = %v, want ~1", got)
	}
	if got := Sigmoid(-100); got > 0.0001 {
		t.Errorf("Sigmoid(-100) = %v, want ~0", got)
	}
}

func TestSigmoidSymmetryProperty(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		return math.Abs(float64(Sigmoid(x)+Sigmoid(-x))-1) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFastSigmoidAccuracy sweeps the full [-10, 10] window, including
// the table edges where the float32 index math is most delicate, and
// asserts the satellite-spec error bound of 2e-4 against the exact
// float64 Sigmoid. A dense uniform sweep plus random probes cover both
// grid-aligned and interior positions.
func TestFastSigmoidAccuracy(t *testing.T) {
	check := func(x float32) {
		t.Helper()
		exact := Sigmoid(x)
		fast := FastSigmoid(x)
		if math.Abs(float64(exact-fast)) > 2e-4 {
			t.Fatalf("FastSigmoid(%v) = %v, exact %v", x, fast, exact)
		}
	}
	for x := float32(-10); x <= 10; x += 0.0007 {
		check(x)
	}
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 200000; i++ {
		check(float32(r.Float64()*20 - 10))
	}
	// The exact edges and their float32 neighbors.
	for _, x := range []float32{-10, 10,
		math.Nextafter32(-10, 0), math.Nextafter32(10, 0),
		math.Nextafter32(-10, -11), math.Nextafter32(10, 11)} {
		check(x)
	}
}

func TestFastSigmoidClamping(t *testing.T) {
	if got := FastSigmoid(50); got != FastSigmoid(sigTableRange) {
		t.Errorf("FastSigmoid(50) = %v, want clamp to FastSigmoid(%v)", got, float32(sigTableRange))
	}
	if got := FastSigmoid(-50); got != FastSigmoid(-sigTableRange) {
		t.Errorf("FastSigmoid(-50) = %v, want clamp to FastSigmoid(%v)", got, -float32(sigTableRange))
	}
	if FastSigmoid(sigTableRange) < 0.999 || FastSigmoid(-sigTableRange) > 0.001 {
		t.Error("FastSigmoid tails are not near 0/1")
	}
}

func TestFastSigmoidMonotoneProperty(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return FastSigmoid(lo) <= FastSigmoid(hi)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColumnMeanVar(t *testing.T) {
	// 3 rows x 2 cols:
	// col0: 1, 2, 3  -> mean 2, var 2/3
	// col1: 0, 0, 6  -> mean 2, var 8
	data := []float32{1, 0, 2, 0, 3, 6}
	mean := make([]float32, 2)
	variance := make([]float32, 2)
	ColumnMeanVar(data, 3, 2, mean, variance)
	if math.Abs(float64(mean[0])-2) > 1e-6 || math.Abs(float64(mean[1])-2) > 1e-6 {
		t.Errorf("mean = %v, want [2 2]", mean)
	}
	if math.Abs(float64(variance[0])-2.0/3.0) > 1e-5 {
		t.Errorf("var[0] = %v, want 2/3", variance[0])
	}
	if math.Abs(float64(variance[1])-8) > 1e-5 {
		t.Errorf("var[1] = %v, want 8", variance[1])
	}
}

func TestColumnMeanVarEmpty(t *testing.T) {
	mean := make([]float32, 3)
	variance := make([]float32, 3)
	ColumnMeanVar(nil, 0, 3, mean, variance)
	for f := 0; f < 3; f++ {
		if mean[f] != 0 || variance[f] != 0 {
			t.Fatal("empty matrix should give zero stats")
		}
	}
}

func TestColumnMeanVarNonNegativeProperty(t *testing.T) {
	f := func(raw []float32) bool {
		k := 4
		n := len(raw) / k
		if n == 0 {
			return true
		}
		data := raw[:n*k]
		for i, x := range data {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				data[i] = 0
			}
		}
		mean := make([]float32, k)
		variance := make([]float32, k)
		ColumnMeanVar(data, n, k, mean, variance)
		for _, v := range variance {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHasNaN(t *testing.T) {
	if HasNaN([]float32{1, 2, 3}) {
		t.Error("HasNaN flagged a clean vector")
	}
	if !HasNaN([]float32{1, float32(math.NaN())}) {
		t.Error("HasNaN missed a NaN")
	}
	if !HasNaN([]float32{float32(math.Inf(1))}) {
		t.Error("HasNaN missed an Inf")
	}
}

func BenchmarkDot64(b *testing.B) {
	x := make([]float32, 64)
	y := make([]float32, 64)
	for i := range x {
		x[i] = float32(i) * 0.01
		y[i] = float32(64-i) * 0.01
	}
	b.ReportAllocs()
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += Dot(x, y)
	}
	_ = sink
}

func BenchmarkFastSigmoid(b *testing.B) {
	b.ReportAllocs()
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += FastSigmoid(float32(i%16) - 8)
	}
	_ = sink
}
