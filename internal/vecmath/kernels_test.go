package vecmath

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
)

// dotScalar is the straight-line reference the unrolled kernels are
// checked against.
func dotScalar(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func randSlice(r *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

// TestDotMatchesScalarAllRemainders sweeps every length 0..67 so each
// unroll remainder (len mod 4) and several full-block counts are hit.
func TestDotMatchesScalarAllRemainders(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for n := 0; n <= 67; n++ {
		for trial := 0; trial < 8; trial++ {
			a := randSlice(r, n)
			b := randSlice(r, n)
			got := Dot(a, b)
			want := dotScalar(a, b)
			if math.Abs(float64(got-want)) > 1e-5*(1+math.Abs(float64(want))) {
				t.Fatalf("len=%d trial=%d: Dot=%v scalar=%v", n, trial, got, want)
			}
		}
	}
}

// TestDotBatchMatchesScalarAllRemainders checks DotBatch against the
// scalar reference for every k 0..67, and that it is bit-identical to
// Dot (the ta scratch-pool equivalence tests depend on that).
func TestDotBatchMatchesScalarAllRemainders(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for k := 0; k <= 67; k++ {
		const rows = 9
		q := randSlice(r, k)
		data := randSlice(r, rows*k)
		out := make([]float32, rows)
		// Poison the output to catch rows the kernel skips.
		for i := range out {
			out[i] = float32(math.NaN())
		}
		DotBatch(q, data, k, out)
		for row := 0; row < rows; row++ {
			rowv := data[row*k : (row+1)*k]
			want := dotScalar(q, rowv)
			if math.Abs(float64(out[row]-want)) > 1e-5*(1+math.Abs(float64(want))) {
				t.Fatalf("k=%d row=%d: DotBatch=%v scalar=%v", k, row, out[row], want)
			}
			if out[row] != Dot(q, rowv) {
				t.Fatalf("k=%d row=%d: DotBatch=%v not bit-identical to Dot=%v", k, row, out[row], Dot(q, rowv))
			}
		}
	}
}

func TestDotBatchPanicsOnMismatch(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"query", func() { DotBatch(make([]float32, 3), make([]float32, 8), 4, make([]float32, 2)) }},
		{"data", func() { DotBatch(make([]float32, 4), make([]float32, 9), 4, make([]float32, 2)) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestDotBatchZeroK(t *testing.T) {
	out := []float32{3, 4}
	DotBatch(nil, nil, 0, out)
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("k=0 should zero the output, got %v", out)
	}
}

func BenchmarkDot(b *testing.B) {
	r := rand.New(rand.NewSource(44))
	for _, k := range []int{16, 60, 61} {
		x := randSlice(r, k)
		y := randSlice(r, k)
		b.Run(benchName("k", k), func(b *testing.B) {
			b.SetBytes(int64(8 * k))
			var acc float32
			for i := 0; i < b.N; i++ {
				acc += Dot(x, y)
			}
			sinkF32 = acc
		})
	}
}

func BenchmarkDotBatch(b *testing.B) {
	r := rand.New(rand.NewSource(45))
	const rows = 4096
	for _, k := range []int{16, 60} {
		q := randSlice(r, k)
		data := randSlice(r, rows*k)
		out := make([]float32, rows)
		b.Run(benchName("k", k), func(b *testing.B) {
			b.SetBytes(int64(8 * k * rows))
			for i := 0; i < b.N; i++ {
				DotBatch(q, data, k, out)
			}
			sinkF32 = out[0]
		})
	}
}

// BenchmarkDotRows measures the pointer-chasing baseline DotBatch
// replaces: the same flops issued as one Dot per [][]float32 row.
func BenchmarkDotRows(b *testing.B) {
	r := rand.New(rand.NewSource(46))
	const rows = 4096
	const k = 60
	q := randSlice(r, k)
	mat := make([][]float32, rows)
	for i := range mat {
		mat[i] = randSlice(r, k)
	}
	out := make([]float32, rows)
	b.SetBytes(int64(8 * k * rows))
	for i := 0; i < b.N; i++ {
		for row := range mat {
			out[row] = Dot(q, mat[row])
		}
	}
	sinkF32 = out[0]
}

// --- Fused training kernels: bit-identical to their scalar forms. ---
// Single-thread training determinism across the kernel swap rests on
// these equalities being exact, not approximate, so every comparison
// below is ==, never a tolerance.

// axpyTwoScalar is the pre-fusion inner loop of Model.step's noise
// update, kept as the reference the fused kernel must match bit for bit.
func axpyTwoScalar(s float32, vi, vk, errI []float32) {
	for f := range errI {
		errI[f] -= s * vk[f]
		vk[f] -= s * vi[f]
	}
}

func TestAxpyTwoBitIdenticalAllRemainders(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for n := 0; n <= 67; n++ {
		for trial := 0; trial < 8; trial++ {
			vi := randSlice(r, n)
			vk1 := randSlice(r, n)
			err1 := randSlice(r, n)
			vk2 := append([]float32(nil), vk1...)
			err2 := append([]float32(nil), err1...)
			s := float32(r.NormFloat64())
			AxpyTwo(s, vi, vk1, err1)
			axpyTwoScalar(s, vi, vk2, err2)
			for f := 0; f < n; f++ {
				if vk1[f] != vk2[f] || err1[f] != err2[f] {
					t.Fatalf("n=%d f=%d: fused (vk=%v err=%v) != scalar (vk=%v err=%v)",
						n, f, vk1[f], err1[f], vk2[f], err2[f])
				}
			}
		}
	}
}

func TestAxpyBitIdenticalAllRemainders(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	for n := 0; n <= 67; n++ {
		src := randSlice(r, n)
		dst1 := randSlice(r, n)
		dst2 := append([]float32(nil), dst1...)
		alpha := float32(r.NormFloat64())
		Axpy(alpha, src, dst1)
		for i := range dst2 {
			dst2[i] += alpha * src[i]
		}
		for i := 0; i < n; i++ {
			if dst1[i] != dst2[i] {
				t.Fatalf("n=%d i=%d: %v != %v", n, i, dst1[i], dst2[i])
			}
		}
	}
}

func TestScaleIntoBitIdenticalAllRemainders(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for n := 0; n <= 67; n++ {
		src := randSlice(r, n)
		dst := randSlice(r, n) // poison: every element must be overwritten
		alpha := float32(r.NormFloat64())
		ScaleInto(alpha, src, dst)
		for i := 0; i < n; i++ {
			if want := alpha * src[i]; dst[i] != want {
				t.Fatalf("n=%d i=%d: %v != %v", n, i, dst[i], want)
			}
		}
	}
}

func TestAxpyClampNonNegBitIdenticalAllRemainders(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	for n := 0; n <= 67; n++ {
		for trial := 0; trial < 8; trial++ {
			src := randSlice(r, n)
			dst1 := randSlice(r, n)
			dst2 := append([]float32(nil), dst1...)
			alpha := float32(r.NormFloat64())
			AxpyClampNonNeg(alpha, src, dst1)
			Axpy(alpha, src, dst2)
			ClampNonNeg(dst2)
			for i := 0; i < n; i++ {
				if dst1[i] != dst2[i] {
					t.Fatalf("n=%d i=%d: fused %v != unfused %v", n, i, dst1[i], dst2[i])
				}
			}
		}
	}
}

func TestDotSigmoidGradBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for n := 0; n <= 67; n++ {
		a := randSlice(r, n)
		b := randSlice(r, n)
		alpha := float32(math.Abs(r.NormFloat64()))
		if got, want := DotSigmoidGrad(alpha, a, b), alpha*FastSigmoid(Dot(a, b)); got != want {
			t.Fatalf("n=%d: DotSigmoidGrad=%v, composition=%v", n, got, want)
		}
		if got, want := DotSigmoidGradPos(alpha, a, b), alpha*(1-FastSigmoid(Dot(a, b))); got != want {
			t.Fatalf("n=%d: DotSigmoidGradPos=%v, composition=%v", n, got, want)
		}
	}
}

func TestFusedKernelsPanicOnMismatch(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"AxpyTwo", func() { AxpyTwo(1, make([]float32, 3), make([]float32, 4), make([]float32, 4)) }},
		{"AxpyTwoErr", func() { AxpyTwo(1, make([]float32, 4), make([]float32, 4), make([]float32, 3)) }},
		{"ScaleInto", func() { ScaleInto(1, make([]float32, 3), make([]float32, 4)) }},
		{"AxpyClampNonNeg", func() { AxpyClampNonNeg(1, make([]float32, 3), make([]float32, 4)) }},
		{"DotSigmoidGrad", func() { DotSigmoidGrad(1, make([]float32, 3), make([]float32, 4)) }},
		{"DotSigmoidGradPos", func() { DotSigmoidGradPos(1, make([]float32, 3), make([]float32, 4)) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func BenchmarkAxpyTwo(b *testing.B) {
	r := rand.New(rand.NewSource(56))
	for _, k := range []int{16, 60, 61} {
		vi := randSlice(r, k)
		vk := randSlice(r, k)
		errI := randSlice(r, k)
		b.Run(benchName("k", k), func(b *testing.B) {
			b.SetBytes(int64(12 * k))
			for i := 0; i < b.N; i++ {
				AxpyTwo(0.001, vi, vk, errI)
			}
			sinkF32 = errI[0]
		})
	}
}

// BenchmarkAxpyTwoScalar is the pre-fusion baseline for AxpyTwo.
func BenchmarkAxpyTwoScalar(b *testing.B) {
	r := rand.New(rand.NewSource(56))
	const k = 60
	vi := randSlice(r, k)
	vk := randSlice(r, k)
	errI := randSlice(r, k)
	b.SetBytes(int64(12 * k))
	for i := 0; i < b.N; i++ {
		axpyTwoScalar(0.001, vi, vk, errI)
	}
	sinkF32 = errI[0]
}

func BenchmarkAxpyClampNonNeg(b *testing.B) {
	r := rand.New(rand.NewSource(57))
	const k = 60
	src := randSlice(r, k)
	dst := randSlice(r, k)
	b.SetBytes(int64(8 * k))
	for i := 0; i < b.N; i++ {
		AxpyClampNonNeg(0.001, src, dst)
	}
	sinkF32 = dst[0]
}

func BenchmarkDotSigmoidGrad(b *testing.B) {
	r := rand.New(rand.NewSource(58))
	const k = 60
	x := randSlice(r, k)
	y := randSlice(r, k)
	b.SetBytes(int64(8 * k))
	var acc float32
	for i := 0; i < b.N; i++ {
		acc += DotSigmoidGrad(0.05, x, y)
	}
	sinkF32 = acc
}

var sinkF32 float32

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}
