package vecmath

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
)

// dotScalar is the straight-line reference the unrolled kernels are
// checked against.
func dotScalar(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func randSlice(r *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

// TestDotMatchesScalarAllRemainders sweeps every length 0..67 so each
// unroll remainder (len mod 4) and several full-block counts are hit.
func TestDotMatchesScalarAllRemainders(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for n := 0; n <= 67; n++ {
		for trial := 0; trial < 8; trial++ {
			a := randSlice(r, n)
			b := randSlice(r, n)
			got := Dot(a, b)
			want := dotScalar(a, b)
			if math.Abs(float64(got-want)) > 1e-5*(1+math.Abs(float64(want))) {
				t.Fatalf("len=%d trial=%d: Dot=%v scalar=%v", n, trial, got, want)
			}
		}
	}
}

// TestDotBatchMatchesScalarAllRemainders checks DotBatch against the
// scalar reference for every k 0..67, and that it is bit-identical to
// Dot (the ta scratch-pool equivalence tests depend on that).
func TestDotBatchMatchesScalarAllRemainders(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for k := 0; k <= 67; k++ {
		const rows = 9
		q := randSlice(r, k)
		data := randSlice(r, rows*k)
		out := make([]float32, rows)
		// Poison the output to catch rows the kernel skips.
		for i := range out {
			out[i] = float32(math.NaN())
		}
		DotBatch(q, data, k, out)
		for row := 0; row < rows; row++ {
			rowv := data[row*k : (row+1)*k]
			want := dotScalar(q, rowv)
			if math.Abs(float64(out[row]-want)) > 1e-5*(1+math.Abs(float64(want))) {
				t.Fatalf("k=%d row=%d: DotBatch=%v scalar=%v", k, row, out[row], want)
			}
			if out[row] != Dot(q, rowv) {
				t.Fatalf("k=%d row=%d: DotBatch=%v not bit-identical to Dot=%v", k, row, out[row], Dot(q, rowv))
			}
		}
	}
}

func TestDotBatchPanicsOnMismatch(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"query", func() { DotBatch(make([]float32, 3), make([]float32, 8), 4, make([]float32, 2)) }},
		{"data", func() { DotBatch(make([]float32, 4), make([]float32, 9), 4, make([]float32, 2)) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestDotBatchZeroK(t *testing.T) {
	out := []float32{3, 4}
	DotBatch(nil, nil, 0, out)
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("k=0 should zero the output, got %v", out)
	}
}

func BenchmarkDot(b *testing.B) {
	r := rand.New(rand.NewSource(44))
	for _, k := range []int{16, 60, 61} {
		x := randSlice(r, k)
		y := randSlice(r, k)
		b.Run(benchName("k", k), func(b *testing.B) {
			b.SetBytes(int64(8 * k))
			var acc float32
			for i := 0; i < b.N; i++ {
				acc += Dot(x, y)
			}
			sinkF32 = acc
		})
	}
}

func BenchmarkDotBatch(b *testing.B) {
	r := rand.New(rand.NewSource(45))
	const rows = 4096
	for _, k := range []int{16, 60} {
		q := randSlice(r, k)
		data := randSlice(r, rows*k)
		out := make([]float32, rows)
		b.Run(benchName("k", k), func(b *testing.B) {
			b.SetBytes(int64(8 * k * rows))
			for i := 0; i < b.N; i++ {
				DotBatch(q, data, k, out)
			}
			sinkF32 = out[0]
		})
	}
}

// BenchmarkDotRows measures the pointer-chasing baseline DotBatch
// replaces: the same flops issued as one Dot per [][]float32 row.
func BenchmarkDotRows(b *testing.B) {
	r := rand.New(rand.NewSource(46))
	const rows = 4096
	const k = 60
	q := randSlice(r, k)
	mat := make([][]float32, rows)
	for i := range mat {
		mat[i] = randSlice(r, k)
	}
	out := make([]float32, rows)
	b.SetBytes(int64(8 * k * rows))
	for i := 0; i < b.N; i++ {
		for row := range mat {
			out[row] = Dot(q, mat[row])
		}
	}
	sinkF32 = out[0]
}

var sinkF32 float32

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}
