//go:build !amd64

package vecmath

// panelRows4 falls back to the portable micro-kernel, which shares its
// accumulation order with the amd64 assembly — DotPanel stays
// bit-identical to repeated Dot on every architecture.
func panelRows4(q0, q1, q2, q3, data []float32, k int, o0, o1, o2, o3 []float32) {
	panelRows4Go(q0, q1, q2, q3, data, k, o0, o1, o2, o3)
}

// panelRowsI8 falls back to the portable int8 micro-kernel.
func panelRowsI8(q0, q1, q2, q3, data []int8, k int, o0, o1, o2, o3 []int32) {
	panelRowsI8Go(q0, q1, q2, q3, data, k, o0, o1, o2, o3)
}
