//go:build amd64

package vecmath

// dotPanelRows4 is the SSE2 4-query float32 panel micro-kernel
// (panel_amd64.s), bit-identical to panelRows4Go.
//
//go:noescape
func dotPanelRows4(q0, q1, q2, q3 *float32, k int, data *float32, rows int, o0, o1, o2, o3 *float32)

// dotPanelRowsI8 is the SSE2 4-query int8 panel micro-kernel
// (panel_amd64.s), exact like panelRowsI8Go.
//
//go:noescape
func dotPanelRowsI8(q0, q1, q2, q3 *int8, k int, data *int8, rows int, o0, o1, o2, o3 *int32)

// panelRows4 dispatches the 4-query float32 micro-kernel. DotPanel
// guarantees k > 0 and len(o0) > 0, so every slice is non-empty.
func panelRows4(q0, q1, q2, q3, data []float32, k int, o0, o1, o2, o3 []float32) {
	dotPanelRows4(&q0[0], &q1[0], &q2[0], &q3[0], k, &data[0], len(o0), &o0[0], &o1[0], &o2[0], &o3[0])
}

// panelRowsI8 dispatches the 4-query int8 micro-kernel under the same
// non-empty guarantees as panelRows4.
func panelRowsI8(q0, q1, q2, q3, data []int8, k int, o0, o1, o2, o3 []int32) {
	dotPanelRowsI8(&q0[0], &q1[0], &q2[0], &q3[0], k, &data[0], len(o0), &o0[0], &o1[0], &o2[0], &o3[0])
}
