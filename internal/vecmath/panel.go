package vecmath

// Matrix-panel and int8 widening kernels for the batched / quantized
// query path. DotPanel generalizes DotBatch from one query row to a
// panel of B query rows sharing one pass over the packed candidate
// block; the int8 variants score quantized candidate rows with a
// widening int8×int8→int32 multiply, exact in integer arithmetic.
//
// On amd64 the 4-query micro-kernels are SSE2 assembly: dotUnrolled's
// four independent accumulators are exactly the four lanes of a packed
// MULPS/ADDPS pipeline (identical per-lane IEEE rounding), and the
// final (s0+s1)+(s2+s3) reduction is performed with scalar ADDSS in
// that exact order, so the vectorized panel is bit-identical to
// repeated Dot calls. Every other architecture runs the pure-Go
// micro-kernel with the same accumulation order; the property tests
// compare the two cell-for-cell on amd64.

// DotPanel computes out[q*rows+r] = Dot(qs[q*k:(q+1)*k], data[r*k:(r+1)*k])
// for b packed query rows against every row r of a packed row-major
// candidate block (rows = len(data)/k). The candidate block is streamed
// once per group of four queries instead of once per query, and the
// shared candidate row amortizes its loads across the four queries —
// that is where batched scoring gets its throughput win. Each (q, r)
// accumulation follows dotUnrolled's exact order, so the output is
// bit-identical to b independent DotBatch calls — the batched-vs-
// sequential equivalence tests in internal/ta rely on that. k == 0
// zeroes out. Panics on size mismatches for the same reason Dot does.
func DotPanel(qs []float32, b int, data []float32, k int, out []float32) {
	if b < 0 || k < 0 || len(qs) != b*k {
		panic("vecmath: DotPanel query panel size mismatch")
	}
	if k == 0 {
		clear(out)
		return
	}
	if len(data)%k != 0 {
		panic("vecmath: DotPanel data size mismatch")
	}
	rows := len(data) / k
	if len(out) != b*rows {
		panic("vecmath: DotPanel output size mismatch")
	}
	if rows == 0 {
		return
	}
	q := 0
	for ; q+4 <= b; q += 4 {
		panelRows4(
			qs[(q+0)*k:(q+1)*k:(q+1)*k],
			qs[(q+1)*k:(q+2)*k:(q+2)*k],
			qs[(q+2)*k:(q+3)*k:(q+3)*k],
			qs[(q+3)*k:(q+4)*k:(q+4)*k],
			data, k,
			out[(q+0)*rows:(q+1)*rows:(q+1)*rows],
			out[(q+1)*rows:(q+2)*rows:(q+2)*rows],
			out[(q+2)*rows:(q+3)*rows:(q+3)*rows],
			out[(q+3)*rows:(q+4)*rows:(q+4)*rows],
		)
	}
	for ; q < b; q++ {
		DotBatch(qs[q*k:q*k+k:q*k+k], data, k, out[q*rows:(q+1)*rows:(q+1)*rows])
	}
}

// panelRows4Go is the portable 4-query micro-kernel: one pass over the
// candidate block scoring four query rows per candidate row, each (q, r)
// cell accumulated in dotUnrolled's exact order. The amd64 build
// replaces it with the SSE2 version behind panelRows4; this form stays
// compiled on every architecture and is the reference the asm is
// property-tested against.
func panelRows4Go(q0, q1, q2, q3, data []float32, k int, o0, o1, o2, o3 []float32) {
	for r := range o0 {
		d := data[r*k : r*k+k : r*k+k]
		o0[r], o1[r], o2[r], o3[r] = dotPanel4(q0, q1, q2, q3, d)
	}
}

// dotPanel4 computes four dot products of one candidate row d against
// four query rows, loading d once. Each output keeps its own four
// independent accumulators combined as (s0+s1)+(s2+s3) plus a scalar
// remainder — dotUnrolled's exact order — so every result is
// bit-identical to Dot(qi, d). Callers guarantee all five slices share
// one length.
func dotPanel4(q0, q1, q2, q3, d []float32) (r0, r1, r2, r3 float32) {
	n4 := len(d) &^ 3
	var a0, a1, a2, a3 float32
	var b0, b1, b2, b3 float32
	var c0, c1, c2, c3 float32
	var e0, e1, e2, e3 float32
	for i := 0; i < n4; i += 4 {
		y := d[i : i+4 : i+4]
		x0 := q0[i : i+4 : i+4]
		x1 := q1[i : i+4 : i+4]
		x2 := q2[i : i+4 : i+4]
		x3 := q3[i : i+4 : i+4]
		a0 += x0[0] * y[0]
		a1 += x0[1] * y[1]
		a2 += x0[2] * y[2]
		a3 += x0[3] * y[3]
		b0 += x1[0] * y[0]
		b1 += x1[1] * y[1]
		b2 += x1[2] * y[2]
		b3 += x1[3] * y[3]
		c0 += x2[0] * y[0]
		c1 += x2[1] * y[1]
		c2 += x2[2] * y[2]
		c3 += x2[3] * y[3]
		e0 += x3[0] * y[0]
		e1 += x3[1] * y[1]
		e2 += x3[2] * y[2]
		e3 += x3[3] * y[3]
	}
	r0 = (a0 + a1) + (a2 + a3)
	r1 = (b0 + b1) + (b2 + b3)
	r2 = (c0 + c1) + (c2 + c3)
	r3 = (e0 + e1) + (e2 + e3)
	for i := n4; i < len(d); i++ {
		r0 += q0[i] * d[i]
		r1 += q1[i] * d[i]
		r2 += q2[i] * d[i]
		r3 += q3[i] * d[i]
	}
	return r0, r1, r2, r3
}

// QuantizeRow quantizes src into dst with a symmetric per-row scale
// (round-half-away-from-zero, clamped to [-127, 127]) and returns the
// scale s = maxabs(src)/127, so src[i] ≈ s·float32(dst[i]). An all-zero
// row quantizes to zeros with scale 0. The slices must have equal
// length; QuantizeRow panics otherwise.
func QuantizeRow(src []float32, dst []int8) float32 {
	if len(src) != len(dst) {
		panic("vecmath: QuantizeRow length mismatch")
	}
	var maxAbs float32
	for _, x := range src {
		if x < 0 {
			x = -x
		}
		if x > maxAbs {
			maxAbs = x
		}
	}
	if maxAbs == 0 {
		clear(dst)
		return 0
	}
	scale := maxAbs / 127
	inv := 127 / maxAbs
	for i, x := range src {
		v := x * inv
		var q int32
		if v >= 0 {
			q = int32(v + 0.5)
		} else {
			q = int32(v - 0.5)
		}
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
	return scale
}

// DotI8 returns the widening int8×int8→int32 inner product of a and b.
// Integer accumulation is exact for any association, so the unrolled
// form equals the scalar loop bit-for-bit; the sum cannot overflow
// int32 below ~133k dimensions. Panics on length mismatch like Dot.
func DotI8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic("vecmath: DotI8 length mismatch")
	}
	return dotI8Unrolled(a, b)
}

// dotI8Unrolled is the shared kernel behind DotI8 and DotBatchI8.
// Callers guarantee len(a) == len(b).
func dotI8Unrolled(a, b []int8) int32 {
	n4 := len(a) &^ 3
	var s0, s1, s2, s3 int32
	for i := 0; i < n4; i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		s0 += int32(x[0]) * int32(y[0])
		s1 += int32(x[1]) * int32(y[1])
		s2 += int32(x[2]) * int32(y[2])
		s3 += int32(x[3]) * int32(y[3])
	}
	s := s0 + s1 + s2 + s3
	for i := n4; i < len(a); i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

// DotBatchI8 computes out[r] = DotI8(q, data[r*k:(r+1)*k]) for every
// row r of a packed row-major int8 matrix — the quantized counterpart
// of DotBatch, streaming candidate rows at a quarter of the float32
// memory traffic. k == 0 zeroes out. Panics on size mismatches.
func DotBatchI8(q, data []int8, k int, out []int32) {
	if k < 0 || len(q) != k {
		panic("vecmath: DotBatchI8 query length mismatch")
	}
	if k == 0 {
		clear(out)
		return
	}
	if len(out)*k != len(data) {
		panic("vecmath: DotBatchI8 size mismatch")
	}
	for r := range out {
		out[r] = dotI8Unrolled(q, data[r*k:r*k+k:r*k+k])
	}
}

// DotPanelI8 computes out[q*rows+r] = DotI8(qs[q*k:(q+1)*k],
// data[r*k:(r+1)*k]) for b packed int8 query rows against every row of
// a packed int8 candidate block — the quantized counterpart of
// DotPanel, streaming the block once per group of four queries. On
// amd64 the micro-kernel widens with PMADDWD, eight elements per step.
// k == 0 zeroes out. Panics on size mismatches.
func DotPanelI8(qs []int8, b int, data []int8, k int, out []int32) {
	if b < 0 || k < 0 || len(qs) != b*k {
		panic("vecmath: DotPanelI8 query panel size mismatch")
	}
	if k == 0 {
		clear(out)
		return
	}
	if len(data)%k != 0 {
		panic("vecmath: DotPanelI8 data size mismatch")
	}
	rows := len(data) / k
	if len(out) != b*rows {
		panic("vecmath: DotPanelI8 output size mismatch")
	}
	if rows == 0 {
		return
	}
	q := 0
	for ; q+4 <= b; q += 4 {
		panelRowsI8(
			qs[(q+0)*k:(q+1)*k:(q+1)*k],
			qs[(q+1)*k:(q+2)*k:(q+2)*k],
			qs[(q+2)*k:(q+3)*k:(q+3)*k],
			qs[(q+3)*k:(q+4)*k:(q+4)*k],
			data, k,
			out[(q+0)*rows:(q+1)*rows:(q+1)*rows],
			out[(q+1)*rows:(q+2)*rows:(q+2)*rows],
			out[(q+2)*rows:(q+3)*rows:(q+3)*rows],
			out[(q+3)*rows:(q+4)*rows:(q+4)*rows],
		)
	}
	for ; q < b; q++ {
		DotBatchI8(qs[q*k:q*k+k:q*k+k], data, k, out[q*rows:(q+1)*rows:(q+1)*rows])
	}
}

// panelRowsI8Go is the portable int8 4-query micro-kernel; integer
// accumulation is exact in any order, so it needs no ordering
// discipline — just the same outputs as four DotBatchI8 calls.
func panelRowsI8Go(q0, q1, q2, q3, data []int8, k int, o0, o1, o2, o3 []int32) {
	for r := range o0 {
		d := data[r*k : r*k+k : r*k+k]
		o0[r] = dotI8Unrolled(q0, d)
		o1[r] = dotI8Unrolled(q1, d)
		o2[r] = dotI8Unrolled(q2, d)
		o3[r] = dotI8Unrolled(q3, d)
	}
}
