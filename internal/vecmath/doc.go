// Package vecmath provides the dense float32 vector kernels used by the
// embedding models. Everything here is hot-path code: the functions avoid
// allocation, take pre-sized slices, and are written so the compiler can
// eliminate bounds checks in the inner loops.
//
// [Dot] and [DotBatch] share one accumulation order, so single-vector
// and batched scoring produce bit-identical results — the scratch
// -pooling equivalence tests in internal/ta rely on that. The fused
// training kernels ([DotSigmoidGrad], [AxpyTwo]) collapse the SGD inner
// loop's loads and stores; see the function comments for the exact
// contracts (length equality is panicked on, never truncated, because a
// silent truncation would corrupt model scores).
package vecmath
