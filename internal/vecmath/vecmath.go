package vecmath

import (
	"math"
)

// Dot returns the inner product of a and b. The slices must have equal
// length; Dot panics otherwise, because a silent truncation would corrupt
// model scores.
//
// The loop is 4-way unrolled with independent accumulators so the four
// multiply-adds per iteration have no dependency chain between them, and
// the re-slicing before the loop lets the compiler hoist every bounds
// check out of it. DotBatch uses the exact same accumulation order, so
// the two produce bit-identical results on the same inputs — the scratch
// -pooling equivalence tests in internal/ta rely on that.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	return dotUnrolled(a, b)
}

// dotUnrolled is the shared kernel behind Dot and DotBatch. Callers
// guarantee len(a) == len(b).
func dotUnrolled(a, b []float32) float32 {
	n4 := len(a) &^ 3
	var s0, s1, s2, s3 float32
	for i := 0; i < n4; i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		s0 += x[0] * y[0]
		s1 += x[1] * y[1]
		s2 += x[2] * y[2]
		s3 += x[3] * y[3]
	}
	s := (s0 + s1) + (s2 + s3)
	for i := n4; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// DotBatch computes out[r] = Dot(q, data[r*k:(r+1)*k]) for every row r of
// a packed row-major matrix. One call replaces len(out) Dot calls over
// pointer-chased [][]float32 rows with a single pass over contiguous
// memory — the layout the TA query hot path streams on every cache miss.
// k == 0 zeroes out. Panics on size mismatches for the same reason Dot
// does.
func DotBatch(q, data []float32, k int, out []float32) {
	if k < 0 || len(q) != k {
		panic("vecmath: DotBatch query length mismatch")
	}
	if k == 0 {
		clear(out)
		return
	}
	if len(out)*k != len(data) {
		panic("vecmath: DotBatch size mismatch")
	}
	for r := range out {
		out[r] = dotUnrolled(q, data[r*k:r*k+k:r*k+k])
	}
}

// Axpy computes dst += alpha*src element-wise. Unrolled like dotUnrolled;
// element updates are independent, so the result is bit-identical to the
// scalar loop.
func Axpy(alpha float32, src, dst []float32) {
	if len(src) != len(dst) {
		panic("vecmath: Axpy length mismatch")
	}
	n4 := len(src) &^ 3
	for i := 0; i < n4; i += 4 {
		s := src[i : i+4 : i+4]
		d := dst[i : i+4 : i+4]
		d[0] += alpha * s[0]
		d[1] += alpha * s[1]
		d[2] += alpha * s[2]
		d[3] += alpha * s[3]
	}
	for i := n4; i < len(src); i++ {
		dst[i] += alpha * src[i]
	}
}

// ScaleInto computes dst = alpha*src element-wise, overwriting dst.
// The SGD step uses it to seed the endpoint error accumulators.
func ScaleInto(alpha float32, src, dst []float32) {
	if len(src) != len(dst) {
		panic("vecmath: ScaleInto length mismatch")
	}
	n4 := len(src) &^ 3
	for i := 0; i < n4; i += 4 {
		s := src[i : i+4 : i+4]
		d := dst[i : i+4 : i+4]
		d[0] = alpha * s[0]
		d[1] = alpha * s[1]
		d[2] = alpha * s[2]
		d[3] = alpha * s[3]
	}
	for i := n4; i < len(src); i++ {
		dst[i] = alpha * src[i]
	}
}

// AxpyTwo applies one fused noise-node update: for every f,
//
//	errI[f] -= s*vk[f];  vk[f] -= s*vi[f]
//
// using vk's pre-update value in the errI accumulation, exactly as the
// two scalar statements would. One pass touches all three vectors while
// they are hot in cache — the dominant inner loop of Model.step, where
// it replaces a scalar 2-op loop. Element updates are independent across
// f (vi, vk and errI never alias in the trainer: the positive endpoint
// and observed neighbors are excluded as noise), so the unrolled form is
// bit-identical to the scalar one.
func AxpyTwo(s float32, vi, vk, errI []float32) {
	if len(vi) != len(vk) || len(vi) != len(errI) {
		panic("vecmath: AxpyTwo length mismatch")
	}
	n4 := len(vi) &^ 3
	for f := 0; f < n4; f += 4 {
		a := vi[f : f+4 : f+4]
		k := vk[f : f+4 : f+4]
		e := errI[f : f+4 : f+4]
		e[0] -= s * k[0]
		k[0] -= s * a[0]
		e[1] -= s * k[1]
		k[1] -= s * a[1]
		e[2] -= s * k[2]
		k[2] -= s * a[2]
		e[3] -= s * k[3]
		k[3] -= s * a[3]
	}
	for f := n4; f < len(vi); f++ {
		errI[f] -= s * vk[f]
		vk[f] -= s * vi[f]
	}
}

// AxpyClampNonNeg computes dst += alpha*src followed by the rectifier
// max(·, 0) in one pass — the fused form of the NonNegative projection
// applied when folding the accumulated endpoint error back into an
// embedding. Bit-identical to Axpy followed by ClampNonNeg.
func AxpyClampNonNeg(alpha float32, src, dst []float32) {
	if len(src) != len(dst) {
		panic("vecmath: AxpyClampNonNeg length mismatch")
	}
	n4 := len(src) &^ 3
	for i := 0; i < n4; i += 4 {
		s := src[i : i+4 : i+4]
		d := dst[i : i+4 : i+4]
		d[0] += alpha * s[0]
		d[1] += alpha * s[1]
		d[2] += alpha * s[2]
		d[3] += alpha * s[3]
		if d[0] < 0 {
			d[0] = 0
		}
		if d[1] < 0 {
			d[1] = 0
		}
		if d[2] < 0 {
			d[2] = 0
		}
		if d[3] < 0 {
			d[3] = 0
		}
	}
	for i := n4; i < len(src); i++ {
		dst[i] += alpha * src[i]
		if dst[i] < 0 {
			dst[i] = 0
		}
	}
}

// Scale multiplies every element of v by alpha in place.
func Scale(alpha float32, v []float32) {
	for i := range v {
		v[i] *= alpha
	}
}

// SumSq returns the sum of squared elements of v.
func SumSq(v []float32) float32 {
	var s float32
	for _, x := range v {
		s += x * x
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float32) float32 {
	return float32(math.Sqrt(float64(SumSq(v))))
}

// ClampNonNeg applies the rectifier max(x, 0) to every element of v in
// place. GEM projects embeddings onto the non-negative orthant after each
// gradient step; the non-negativity is also what makes the adaptive
// sampler's dimension distribution p(f|v) ∝ v_f·σ_f a valid distribution.
func ClampNonNeg(v []float32) {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}

// Sigmoid returns 1/(1+exp(-x)) computed in float64 internally for
// stability at large |x|.
func Sigmoid(x float32) float32 {
	// For very negative x, exp(-x) overflows float32 math; float64 is safe
	// for the whole float32 input range.
	return float32(1.0 / (1.0 + math.Exp(-float64(x))))
}

// sigmoid lookup table covering [-sigTableRange, sigTableRange]. Outside
// the range the function is within 5e-5 of 0 or 1, so clamping is fine
// for SGD purposes. word2vec and LINE use the same trick.
const (
	sigTableSize  = 2048
	sigTableRange = 10.0
	// sigTableScale converts an input offset into a table position; it is
	// exactly representable in float32 (102.4 = 512/5), so the index math
	// stays precise without a float64 round-trip.
	sigTableScale = float32(sigTableSize) / (2 * sigTableRange)
)

var sigTable [sigTableSize + 1]float32

func init() {
	for i := 0; i <= sigTableSize; i++ {
		x := -sigTableRange + 2*sigTableRange*float64(i)/float64(sigTableSize)
		sigTable[i] = float32(1.0 / (1.0 + math.Exp(-x)))
	}
}

// FastSigmoid returns a table-interpolated sigmoid accurate to better
// than 2e-4 on [-10, 10] (about 2e-6 away from the clamp edges) and
// clamped to {~0, ~1} outside. Used in SGD inner loops where exact
// transcendental accuracy is wasted effort. The interpolation runs
// entirely in float32: the table position is a product by an exactly
// representable scale, so no precision is bought by the former float64
// round-trip, and dropping it removes two conversions from the hottest
// scalar call in training.
func FastSigmoid(x float32) float32 {
	if x <= -sigTableRange {
		return sigTable[0]
	}
	if x >= sigTableRange {
		return sigTable[sigTableSize]
	}
	pos := (x + sigTableRange) * sigTableScale
	i := int(pos)
	if i >= sigTableSize {
		// x just below the range can round up to the table's end in
		// float32; the clamp value is exact there.
		return sigTable[sigTableSize]
	}
	frac := pos - float32(i)
	return sigTable[i] + frac*(sigTable[i+1]-sigTable[i])
}

// DotSigmoidGrad returns alpha·σ(a·b), the repulsive gradient magnitude
// for a sampled noise pair, fused so the hot path issues one call (and
// one bounds-checked length test) instead of three. Bit-identical to
// alpha*FastSigmoid(Dot(a, b)).
func DotSigmoidGrad(alpha float32, a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: DotSigmoidGrad length mismatch")
	}
	return alpha * FastSigmoid(dotUnrolled(a, b))
}

// DotSigmoidGradPos returns alpha·(1−σ(a·b)), the attractive gradient
// magnitude for a positive edge. Bit-identical to
// alpha*(1-FastSigmoid(Dot(a, b))).
func DotSigmoidGradPos(alpha float32, a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: DotSigmoidGradPos length mismatch")
	}
	return alpha * (1 - FastSigmoid(dotUnrolled(a, b)))
}

// ColumnMeanVar computes per-dimension mean and variance across a row-major
// matrix of n rows by k columns stored contiguously in data (len = n*k).
// The outputs mean and variance must each have length k. Used by the
// adaptive sampler's dimension distribution, which weights dimensions by
// their value spread across nodes.
func ColumnMeanVar(data []float32, n, k int, mean, variance []float32) {
	if n*k != len(data) {
		panic("vecmath: ColumnMeanVar size mismatch")
	}
	if len(mean) != k || len(variance) != k {
		panic("vecmath: ColumnMeanVar output size mismatch")
	}
	for f := 0; f < k; f++ {
		mean[f] = 0
		variance[f] = 0
	}
	if n == 0 {
		return
	}
	for r := 0; r < n; r++ {
		row := data[r*k : (r+1)*k]
		for f, x := range row {
			mean[f] += x
		}
	}
	inv := 1 / float32(n)
	for f := 0; f < k; f++ {
		mean[f] *= inv
	}
	for r := 0; r < n; r++ {
		row := data[r*k : (r+1)*k]
		for f, x := range row {
			d := x - mean[f]
			variance[f] += d * d
		}
	}
	for f := 0; f < k; f++ {
		variance[f] *= inv
	}
}

// HasNaN reports whether v contains a NaN or infinity. Training code uses
// it as a cheap guard in tests and debug assertions.
func HasNaN(v []float32) bool {
	for _, x := range v {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
	}
	return false
}
