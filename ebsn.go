// Package ebsn is the public API of the joint event-partner
// recommendation library, a reproduction of "Joint Event-Partner
// Recommendation in Event-based Social Networks" (ICDE 2018).
//
// The package wires the full pipeline behind one type, Recommender:
// synthetic EBSN generation (or CSV import), the chronological cold-start
// split, the five relation graphs of the paper, GEM training (GEM-A,
// GEM-P or the PTE baseline), and the two online recommendation paths —
// direct event ranking and TA-accelerated joint event-partner ranking.
//
// Quick start:
//
//	rec, err := ebsn.New(ebsn.Config{City: ebsn.CityTiny, Seed: 1})
//	...
//	events := rec.TopEvents(user, 10)
//	pairs, _ := rec.TopEventPartners(user, 10)
package ebsn

import (
	"fmt"
	"math"
	"path/filepath"
	"time"

	"ebsn/internal/core"
	"ebsn/internal/datagen"
	"ebsn/internal/ebsnet"
	"ebsn/internal/engine"
	"ebsn/internal/eval"
	"ebsn/internal/geo"
	"ebsn/internal/ta"
	"ebsn/internal/vecmath"
)

// Re-exported building blocks for callers that need to go deeper than the
// Recommender facade.
type (
	// Dataset is an event-based social network snapshot.
	Dataset = ebsnet.Dataset
	// Event is one social event.
	Event = ebsnet.Event
	// Split is the chronological train/validation/test partition.
	Split = ebsnet.Split
	// Graphs bundles the five relation graphs.
	Graphs = ebsnet.Graphs
	// Model is a trainable GEM instance.
	Model = core.Model
	// ModelConfig is the full GEM hyper-parameter set.
	ModelConfig = core.Config
	// ModelSnapshot is the serializable state of a trained model — what
	// SaveModel writes and what checkpoint/resume and live reload move
	// between processes.
	ModelSnapshot = core.Snapshot
	// GeneratorConfig parameterizes the synthetic city generator.
	GeneratorConfig = datagen.Config
	// SearchStats reports how much work one TA query did (sorted and
	// random accesses against the candidate count, plus wall-clock time
	// inside the index) — the per-query observability surface behind the
	// paper's pruning claims.
	SearchStats = ta.SearchStats
	// TrainStats is a live snapshot of training telemetry (steps,
	// per-graph edge draws, rank-rebuild latency); see Model.TrainStats.
	TrainStats = core.TrainStats
	// EngineStats decomposes one scatter-gather query answered by the
	// sharded engine: aggregated TA work, the per-shard breakdown, and
	// the prepass/merge/critical-path timings.
	EngineStats = engine.Stats
	// EngineShardStats is one shard's share of a scatter-gather query.
	EngineShardStats = engine.ShardStats
	// EngineBatchStats decomposes one batched scatter-gather query:
	// aggregated TA work, the per-shard breakdown, and the shared
	// prepass/merge timings amortized across the batch.
	EngineBatchStats = engine.BatchStats
)

// City selects a built-in synthetic dataset scale.
type City int

// Built-in scales. CityBeijing and CityShanghai mirror the paper's
// Table I shapes; CityTiny and CitySmall are for tests and quick runs.
const (
	CityTiny City = iota
	CitySmall
	CityBeijing
	CityShanghai
)

// String returns the flag-style lowercase name ("tiny", "beijing", ...)
// accepted back by ParseCity.
func (c City) String() string {
	switch c {
	case CityTiny:
		return "tiny"
	case CitySmall:
		return "small"
	case CityBeijing:
		return "beijing"
	case CityShanghai:
		return "shanghai"
	default:
		return fmt.Sprintf("City(%d)", int(c))
	}
}

// ParseCity converts a name ("tiny", "small", "beijing", "shanghai") to a
// City.
func ParseCity(s string) (City, error) {
	switch s {
	case "tiny":
		return CityTiny, nil
	case "small":
		return CitySmall, nil
	case "beijing":
		return CityBeijing, nil
	case "shanghai":
		return CityShanghai, nil
	default:
		return 0, fmt.Errorf("ebsn: unknown city %q", s)
	}
}

// GeneratorConfigFor returns the generator preset for a city.
func GeneratorConfigFor(city City, seed uint64) GeneratorConfig {
	switch city {
	case CitySmall:
		return datagen.SmallConfig(seed)
	case CityBeijing:
		return datagen.BeijingConfig(seed)
	case CityShanghai:
		return datagen.ShanghaiConfig(seed)
	default:
		return datagen.TinyConfig(seed)
	}
}

// Variant selects the trained model family.
type Variant int

// Model variants, in the paper's naming.
const (
	// GEMA is the full model with the adaptive adversarial noise sampler.
	GEMA Variant = iota
	// GEMP replaces the adaptive sampler with the degree-based one.
	GEMP
	// PTE is the baseline: unidirectional sampling, uniform graph choice.
	PTE
)

// String returns the paper's display name ("GEM-A", "GEM-P", "PTE");
// ParseVariant accepts these case-insensitively.
func (v Variant) String() string {
	switch v {
	case GEMA:
		return "GEM-A"
	case GEMP:
		return "GEM-P"
	case PTE:
		return "PTE"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ParseVariant converts "gem-a", "gem-p" or "pte" to a Variant.
func ParseVariant(s string) (Variant, error) {
	switch s {
	case "gem-a", "gema", "GEM-A":
		return GEMA, nil
	case "gem-p", "gemp", "GEM-P":
		return GEMP, nil
	case "pte", "PTE":
		return PTE, nil
	default:
		return 0, fmt.Errorf("ebsn: unknown variant %q", s)
	}
}

func (v Variant) preset() core.Config {
	switch v {
	case GEMP:
		return core.GEMPConfig()
	case PTE:
		return core.PTEConfig()
	default:
		return core.GEMAConfig()
	}
}

// Config parameterizes the full pipeline.
type Config struct {
	// City selects the synthetic dataset scale (ignored when a Dataset is
	// supplied explicitly to Build).
	City City
	// Seed drives dataset generation, training and evaluation.
	Seed uint64
	// Variant selects the model family (default GEM-A).
	Variant Variant
	// K is the embedding dimension; 0 means the paper's 60.
	K int
	// TrainSteps is the SGD budget N; 0 picks a scale-appropriate default
	// (≈25 samples per relation edge).
	TrainSteps int64
	// Threads is the Hogwild worker count; 0 means 4.
	Threads int
	// MinEventsPerUser filters out sparse users as the paper does;
	// 0 means 5.
	MinEventsPerUser int
}

func (c *Config) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.K == 0 {
		c.K = 60
	}
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.MinEventsPerUser == 0 {
		c.MinEventsPerUser = 5
	}
}

// Recommendation is one scored event for a target user.
type Recommendation struct {
	Event int32
	Score float32
}

// PairRecommendation is one scored event-partner pair.
type PairRecommendation struct {
	Event   int32
	Partner int32
	Score   float32
}

// Recommender is the assembled pipeline.
//
// Concurrency: query methods (TopEvents, TopEventsBatch,
// TopEventPartners, Explain, the evaluation methods) are safe to call
// from multiple goroutines once the structures they use exist. Methods
// that build state lazily or mutate it — PrepareJoint, FoldInEvent's
// first call, IngestColdEvent, CompactLiveEvents — must be serialized by
// the caller; a service typically calls PrepareJoint once at startup and
// funnels ingestion through one goroutine.
type Recommender struct {
	cfg     Config
	dataset *ebsnet.Dataset
	split   *ebsnet.Split
	graphs  *ebsnet.Graphs
	model   *core.Model

	// Lazily built TA machinery for the joint task.
	taIndex  *ta.FastIndex
	taSet    *ta.CandidateSet
	taPruneK int

	// Sharded scatter-gather engine (PrepareJointSharded). With one
	// shard it doubles as the monolithic index above; with more, the
	// monolithic index remains a separate lazily built structure that
	// only the live-ingestion path needs.
	taEngine *engine.Engine

	// taQuantized routes joint queries through the int8-quantized
	// candidate mirrors (EnableQuantizedQueries).
	taQuantized bool

	// Lazily captured snapshot for fold-in scoring; the model is frozen
	// after Build/Open, so one capture suffices.
	snap *core.Snapshot

	// Live-ingestion state (serving.go): the mutable delta tier absorbing
	// ingested events, plus the live base it overlays — the plain engine
	// or index until a compaction forks a private fold (taLive*), so the
	// frozen structures the non-live query paths use are never mutated.
	taDelta      *ta.Delta
	taLiveEngine *engine.Engine
	taLiveSet    *ta.CandidateSet
	taLiveIdx    *ta.FastIndex
	liveEvents   int
}

// New generates a synthetic city per cfg and runs the full pipeline.
func New(cfg Config) (*Recommender, error) {
	cfg.fill()
	d, err := datagen.Generate(GeneratorConfigFor(cfg.City, cfg.Seed))
	if err != nil {
		return nil, err
	}
	return Build(d, cfg)
}

// Build runs the pipeline on a caller-supplied dataset (e.g. one imported
// with LoadDatasetCSV). The dataset must be finalized.
func Build(d *ebsnet.Dataset, cfg Config) (*Recommender, error) {
	r, err := Assemble(d, cfg)
	if err != nil {
		return nil, err
	}
	r.model.TrainSteps(r.model.Cfg.TotalSteps)
	return r, nil
}

// Assemble runs the pipeline up to (but not including) training: the
// dataset is filtered and split, the five relation graphs are built, and
// the model is constructed with random initialization and its TotalSteps
// budget resolved (cfg.TrainSteps, or ≈25 samples per edge when zero).
// Callers drive training themselves via Model().TrainStepsCtx — the
// checkpoint/resume path of cmd/ebsn-train — or restore a saved
// ModelSnapshot with Model().RestoreSnapshot.
func Assemble(d *ebsnet.Dataset, cfg Config) (*Recommender, error) {
	cfg.fill()
	filtered, err := d.FilterMinEvents(cfg.MinEventsPerUser)
	if err != nil {
		return nil, err
	}
	if filtered.NumUsers == 0 {
		return nil, fmt.Errorf("ebsn: no users survive the %d-event filter", cfg.MinEventsPerUser)
	}
	split, err := ebsnet.ChronologicalSplit(filtered, ebsnet.DefaultSplitConfig())
	if err != nil {
		return nil, err
	}
	graphs, err := ebsnet.BuildGraphs(filtered, split, ebsnet.DefaultGraphsConfig())
	if err != nil {
		return nil, err
	}

	steps := cfg.TrainSteps
	if steps == 0 {
		total := 0
		for _, g := range graphs.All() {
			total += g.NumEdges()
		}
		steps = int64(total) * 25
	}
	mc := cfg.Variant.preset()
	mc.K = cfg.K
	mc.Seed = cfg.Seed
	mc.Threads = cfg.Threads
	mc.TotalSteps = steps
	model, err := core.NewModel(graphs, mc)
	if err != nil {
		return nil, err
	}
	return &Recommender{cfg: cfg, dataset: filtered, split: split, graphs: graphs, model: model}, nil
}

// Dataset returns the filtered dataset the recommender was built on.
func (r *Recommender) Dataset() *ebsnet.Dataset { return r.dataset }

// Split returns the chronological split.
func (r *Recommender) Split() *ebsnet.Split { return r.split }

// RelationGraphs returns the trained-on relation graphs.
func (r *Recommender) RelationGraphs() *ebsnet.Graphs { return r.graphs }

// Model returns the trained model.
func (r *Recommender) Model() *core.Model { return r.model }

// TopEvents ranks the cold (test) events for the user and returns the
// top n. These are exactly the events the paper's recommendation service
// would surface: future events with no attendance history.
func (r *Recommender) TopEvents(user int32, n int) ([]Recommendation, error) {
	if int(user) < 0 || int(user) >= r.dataset.NumUsers {
		return nil, fmt.Errorf("ebsn: user %d out of range [0,%d)", user, r.dataset.NumUsers)
	}
	if n <= 0 {
		return nil, fmt.Errorf("ebsn: n must be positive")
	}
	type se struct {
		x int32
		s float32
	}
	best := make([]se, 0, n)
	for _, x := range r.split.TestEvents {
		s := r.model.ScoreUserEvent(user, x)
		if len(best) < n {
			best = append(best, se{x, s})
			up := len(best) - 1
			for up > 0 && best[up].s > best[up-1].s {
				best[up], best[up-1] = best[up-1], best[up]
				up--
			}
		} else if s > best[n-1].s {
			best[n-1] = se{x, s}
			up := n - 1
			for up > 0 && best[up].s > best[up-1].s {
				best[up], best[up-1] = best[up-1], best[up]
				up--
			}
		}
	}
	out := make([]Recommendation, len(best))
	for i, e := range best {
		out[i] = Recommendation{Event: e.x, Score: e.s}
	}
	return out, nil
}

// jointVectors extracts the cold-event and partner embedding rows the
// joint candidate space is built over.
func (r *Recommender) jointVectors() (events, partners [][]float32) {
	events = make([][]float32, len(r.split.TestEvents))
	for i, x := range r.split.TestEvents {
		events[i] = r.model.EventVec(x)
	}
	partners = make([][]float32, r.dataset.NumUsers)
	for u := range partners {
		partners[u] = r.model.UserVec(int32(u))
	}
	return events, partners
}

// PrepareJoint builds the transformed candidate space and TA index for
// joint event-partner recommendation, pruning to each partner's top
// pruneK test events (0 keeps the full space). It is called implicitly by
// TopEventPartners but exposed so services can pay the build cost at
// startup. A sharded engine prepared by PrepareJointSharded is left in
// place: both serve the same frozen embeddings, and the monolithic
// index is what the live-ingestion delta builds on.
func (r *Recommender) PrepareJoint(pruneK int) error {
	events, partners := r.jointVectors()
	set, err := ta.BuildCandidates(events, partners, ta.BuildConfig{TopKEvents: pruneK, Workers: r.cfg.Threads})
	if err != nil {
		return err
	}
	r.taSet = set
	r.taIndex = ta.NewFastIndex(set)
	r.taPruneK = pruneK
	// A rebuilt candidate space invalidates the live-ingestion delta;
	// callers re-ingest (or compact before re-preparing).
	r.resetLive()
	return nil
}

// resetLive clears the live-ingestion tiers; a re-prepared candidate
// space orphans them.
func (r *Recommender) resetLive() {
	r.taDelta = nil
	r.taLiveEngine = nil
	r.taLiveSet = nil
	r.taLiveIdx = nil
}

// PrepareJointSharded builds the scatter-gather engine over the joint
// candidate space with the given partner-range shard count (values < 1
// mean 1) and the same pruning semantics as PrepareJoint. With one
// shard the engine's candidate set and index double as the monolithic
// ones, so the TopEventPartners* family keeps working without a second
// build; with more shards the monolithic structures are cleared and
// rebuilt lazily only if a non-live monolithic query path needs them.
// Live ingestion overlays the engine directly: the delta tier covers
// every partner, and compaction folds it into all shards (Engine.Fold).
func (r *Recommender) PrepareJointSharded(pruneK, shards int) error {
	events, partners := r.jointVectors()
	eng, err := engine.Build(events, partners, engine.Config{
		Shards:     shards,
		TopKEvents: pruneK,
		Workers:    r.cfg.Threads,
	})
	if err != nil {
		return err
	}
	r.taEngine = eng
	r.taPruneK = pruneK
	r.resetLive()
	r.taSet = eng.Set()     // non-nil only for one shard
	r.taIndex = eng.Index() // likewise
	return nil
}

// EngineShards reports the shard count of the prepared scatter-gather
// engine, 0 when PrepareJointSharded has not run.
func (r *Recommender) EngineShards() int {
	if r.taEngine == nil {
		return 0
	}
	return r.taEngine.Shards()
}

// TopEventPartnersSharded is TopEventPartners answered by the sharded
// scatter-gather engine. Results are bit-identical to the monolithic
// path for every shard count (the engine's exactness property test
// pins this).
func (r *Recommender) TopEventPartnersSharded(user int32, n int) ([]PairRecommendation, error) {
	out, _, err := r.TopEventPartnersShardedStats(user, n)
	return out, err
}

// TopEventPartnersShardedStats is TopEventPartnersSharded plus the
// scatter-gather decomposition: aggregated TA counters, the per-shard
// breakdown, and the prepass/merge/critical-path timings a serving
// layer renders as span stages and shard metrics. When no engine has
// been prepared it builds a one-shard engine with the default pruning.
func (r *Recommender) TopEventPartnersShardedStats(user int32, n int) ([]PairRecommendation, EngineStats, error) {
	if int(user) < 0 || int(user) >= r.dataset.NumUsers {
		return nil, EngineStats{}, fmt.Errorf("ebsn: user %d out of range [0,%d)", user, r.dataset.NumUsers)
	}
	if n <= 0 {
		return nil, EngineStats{}, fmt.Errorf("ebsn: n must be positive")
	}
	if r.taEngine == nil {
		k := len(r.split.TestEvents) / 20
		if k < 1 {
			k = 1
		}
		if err := r.PrepareJointSharded(k, 1); err != nil {
			return nil, EngineStats{}, err
		}
	}
	res, stats, err := r.taEngine.Search(r.model.UserVec(user), n, user)
	if err != nil {
		return nil, stats, err
	}
	out := make([]PairRecommendation, 0, len(res))
	for _, rr := range res {
		out = append(out, PairRecommendation{
			Event:   r.split.TestEvents[rr.Event],
			Partner: rr.Partner,
			Score:   rr.Score,
		})
	}
	return out, stats, nil
}

// TopEventPartners returns the top-n event-partner pairs for the user via
// the TA index over the transformed space. Event IDs in the result are
// dataset event IDs; partners are user IDs.
func (r *Recommender) TopEventPartners(user int32, n int) ([]PairRecommendation, error) {
	out, _, err := r.TopEventPartnersStats(user, n)
	return out, err
}

// TopEventPartnersStats is TopEventPartners plus the TA work counters for
// the query — what a serving layer aggregates into its metrics.
func (r *Recommender) TopEventPartnersStats(user int32, n int) ([]PairRecommendation, SearchStats, error) {
	if int(user) < 0 || int(user) >= r.dataset.NumUsers {
		return nil, SearchStats{}, fmt.Errorf("ebsn: user %d out of range [0,%d)", user, r.dataset.NumUsers)
	}
	if n <= 0 {
		return nil, SearchStats{}, fmt.Errorf("ebsn: n must be positive")
	}
	if r.taIndex == nil {
		// Default pruning: 5% of test events per partner, the point where
		// Figure 7 shows the approximation ratio reaching ~1.
		k := len(r.split.TestEvents) / 20
		if k < 1 {
			k = 1
		}
		if err := r.PrepareJoint(k); err != nil {
			return nil, SearchStats{}, err
		}
	}
	// Pooled scratch keeps the TA working set allocation-free; the raw
	// results alias it, so they are converted before the scratch is
	// returned.
	sc := ta.GetScratch()
	defer ta.PutScratch(sc)
	var (
		res   []ta.Result
		stats SearchStats
	)
	if r.quantizedJointQuery(r.taSet) {
		res, stats = r.taIndex.TopNExcludingQuantizedScratch(r.model.UserVec(user), n, user, sc)
	} else {
		res, stats = r.taIndex.TopNExcludingScratch(r.model.UserVec(user), n, user, sc)
	}
	out := make([]PairRecommendation, 0, len(res))
	for _, rr := range res {
		out = append(out, PairRecommendation{
			Event:   r.split.TestEvents[rr.Event],
			Partner: rr.Partner,
			Score:   rr.Score,
		})
	}
	return out, stats, nil
}

// LoadDatasetCSV imports a dataset directory written by SaveDatasetCSV.
func LoadDatasetCSV(dir string) (*Dataset, error) { return ebsnet.ImportCSV(dir) }

// SaveDatasetCSV exports the dataset as CSV files under dir.
func SaveDatasetCSV(d *Dataset, dir string) error { return ebsnet.ExportCSV(d, dir) }

// SaveModel writes the trained embeddings to path in the versioned,
// checksummed snapshot format. The write is atomic (temp file + fsync +
// rename): a crash mid-save leaves the previous file intact.
func (r *Recommender) SaveModel(path string) error {
	return r.model.Snapshot().SaveFile(path)
}

// LoadModelSnapshot reads a model snapshot written by SaveModel (or by a
// pre-versioning build; legacy bare-gob files still load). Corrupt or
// truncated files fail with a descriptive error.
func LoadModelSnapshot(path string) (*ModelSnapshot, error) {
	return core.LoadSnapshotFile(path)
}

// WithSnapshot returns a new Recommender that shares this one's dataset,
// split and relation graphs (all immutable after assembly) but serves
// the embeddings in snap — the zero-downtime reload path: build the
// replacement off the request path, PrepareJoint it, then swap. The
// snapshot must come from a model trained on the same dataset; matrix
// shape mismatches are rejected. Live-ingested events and lazily built
// TA state are not carried over.
func (r *Recommender) WithSnapshot(snap *ModelSnapshot) (*Recommender, error) {
	if snap == nil {
		return nil, fmt.Errorf("ebsn: nil snapshot")
	}
	model, err := core.NewModel(r.graphs, snap.Cfg)
	if err != nil {
		return nil, err
	}
	if err := model.RestoreSnapshot(snap); err != nil {
		return nil, err
	}
	cfg := r.cfg
	cfg.K = snap.Cfg.K
	return &Recommender{cfg: cfg, dataset: r.dataset, split: r.split, graphs: r.graphs, model: model}, nil
}

// GenerateDataset synthesizes a city dataset without building a pipeline.
func GenerateDataset(cfg GeneratorConfig) (*Dataset, error) { return datagen.Generate(cfg) }

// Open rebuilds a Recommender from a directory written by cmd/ebsn-train:
// dataset/ (CSV) plus model.gob. No training happens; the saved
// embeddings are restored into a model built over the same graphs. The
// snapshot's dimension overrides cfg.K.
func Open(dir string, cfg Config) (*Recommender, error) {
	cfg.fill()
	d, err := ebsnet.ImportCSV(filepath.Join(dir, "dataset"))
	if err != nil {
		return nil, err
	}
	snap, err := core.LoadSnapshotFile(filepath.Join(dir, "model.gob"))
	if err != nil {
		return nil, err
	}
	filtered, err := d.FilterMinEvents(cfg.MinEventsPerUser)
	if err != nil {
		return nil, err
	}
	split, err := ebsnet.ChronologicalSplit(filtered, ebsnet.DefaultSplitConfig())
	if err != nil {
		return nil, err
	}
	graphs, err := ebsnet.BuildGraphs(filtered, split, ebsnet.DefaultGraphsConfig())
	if err != nil {
		return nil, err
	}
	mc := snap.Cfg
	model, err := core.NewModel(graphs, mc)
	if err != nil {
		return nil, err
	}
	if err := model.RestoreSnapshot(snap); err != nil {
		return nil, err
	}
	cfg.K = mc.K
	return &Recommender{cfg: cfg, dataset: filtered, split: split, graphs: graphs, model: model}, nil
}

// EvalResult is an Accuracy@n evaluation outcome.
type EvalResult = eval.Result

// EvaluateColdStart runs the paper's cold-start event protocol (1000
// sampled negatives per held-out attendance) on the test split. maxCases
// caps the evaluated cases (0 = all).
func (r *Recommender) EvaluateColdStart(ns []int, maxCases int) (EvalResult, error) {
	cfg := eval.DefaultConfig()
	if len(ns) > 0 {
		cfg.Ns = ns
	}
	cfg.MaxCases = maxCases
	cfg.Seed = r.cfg.Seed ^ 0xeea1
	return eval.EventRecommendation(r.model, r.dataset, r.split, ebsnet.Test, cfg)
}

// EvaluatePartner runs the paper's joint event-partner protocol (500
// negative events + 500 negative partners per ground-truth triple).
func (r *Recommender) EvaluatePartner(ns []int, maxCases int) (EvalResult, error) {
	cfg := eval.DefaultConfig()
	if len(ns) > 0 {
		cfg.Ns = ns
	}
	cfg.MaxCases = maxCases
	cfg.Seed = r.cfg.Seed ^ 0xeea2
	triples := ebsnet.PartnerGroundTruth(r.dataset, r.split, ebsnet.Test)
	return eval.PartnerRecommendation(r.model, r.dataset, r.split, triples, ebsnet.Test, cfg)
}

// FoldInEvent synthesizes an embedding for a brand-new event that did not
// exist at training time, from its tokenized description, venue and start
// time — the live-service path for events arriving after the last
// retrain. The region is inherited from events at the same venue, or from
// the geographically nearest event when the venue is new.
func (r *Recommender) FoldInEvent(words []string, venue int32, start time.Time) ([]float32, error) {
	if int(venue) < 0 || int(venue) >= len(r.dataset.Venues) {
		return nil, fmt.Errorf("ebsn: venue %d out of range [0,%d)", venue, len(r.dataset.Venues))
	}
	region := int32(-1)
	for x, e := range r.dataset.Events {
		if e.Venue == venue {
			region = int32(r.graphs.EventRegion[x])
			break
		}
	}
	if region < 0 {
		// New venue: adopt the region of the geographically nearest event.
		p := r.dataset.Venues[venue]
		best := -1
		bestKm := math.Inf(1)
		for x, e := range r.dataset.Events {
			if km := geo.EquirectKm(p, r.dataset.Venues[e.Venue]); km < bestKm {
				bestKm = km
				best = x
			}
		}
		region = int32(r.graphs.EventRegion[best])
	}
	if r.snap == nil {
		r.snap = r.model.Snapshot()
	}
	return r.snap.FoldIn(r.graphs.Vocab, core.ColdEvent{Words: words, Region: region, Start: start})
}

// ScoreColdEvent scores a folded-in event vector for a user.
func (r *Recommender) ScoreColdEvent(user int32, eventVec []float32) float32 {
	return vecmath.Dot(r.model.UserVec(user), eventVec)
}

// RankingMetrics is the full-ranking metric set (MRR, mean rank,
// Recall@n, NDCG@n).
type RankingMetrics = eval.RankingMetrics

// EvaluateFullRanking ranks every held-out attendance's true event
// against the whole cold-event pool — no negative sampling — and reports
// MRR, mean rank, Recall@n and NDCG@n. Slower than EvaluateColdStart but
// sampling-noise free.
func (r *Recommender) EvaluateFullRanking(ns []int, maxCases int) (RankingMetrics, error) {
	return eval.EventRecommendationFullRanking(r.model, r.dataset, r.split, ebsnet.Test, eval.FullRankingConfig{
		Ns:       ns,
		MaxCases: maxCases,
		Workers:  r.cfg.Threads,
	})
}

// TrainingObjective estimates the current value of the negative-sampling
// objective the trainer descends, overall and per relation graph — the
// number to watch on a training dashboard.
func (r *Recommender) TrainingObjective(samples int) (core.ObjectiveEstimate, error) {
	return r.model.EstimateObjective(samples, r.cfg.Seed^0x0b9e)
}

// DescribeDataset returns the distributional profile of the underlying
// dataset (activity, popularity and social-degree statistics).
func (r *Recommender) DescribeDataset() ebsnet.Description {
	return ebsnet.Describe(r.dataset)
}
