package ebsn

import (
	"context"
	"path/filepath"
	"testing"
)

// TestAssembleCheckpointResume exercises the crash-safe training loop
// end to end: assemble, train half the budget, checkpoint, "crash",
// reassemble, resume from the checkpoint, finish — the resumed model
// must pick up the step counter (and with it the decay schedule) where
// the checkpoint left off.
func TestAssembleCheckpointResume(t *testing.T) {
	cfg := Config{Seed: 11, Threads: 2, TrainSteps: lifecycleTrainSteps, K: 8}
	d, err := GenerateDataset(GeneratorConfigFor(CityTiny, cfg.Seed))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Assemble(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Model().Steps() != 0 {
		t.Fatalf("Assemble trained the model: %d steps", rec.Model().Steps())
	}
	total := rec.Model().Cfg.TotalSteps
	if total != lifecycleTrainSteps {
		t.Fatalf("TotalSteps = %d, want %d", total, lifecycleTrainSteps)
	}

	// First half, then checkpoint.
	if taken := rec.Model().TrainStepsCtx(context.Background(), total/2); taken != total/2 {
		t.Fatalf("first half took %d steps", taken)
	}
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := rec.SaveModel(path); err != nil {
		t.Fatal(err)
	}

	// "Crash": a fresh process reassembles and resumes.
	resumed, err := Assemble(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := LoadModelSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Model().RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if resumed.Model().Steps() != total/2 {
		t.Fatalf("resumed step counter = %d, want %d", resumed.Model().Steps(), total/2)
	}
	remaining := total - resumed.Model().Steps()
	if taken := resumed.Model().TrainStepsCtx(context.Background(), remaining); taken != remaining {
		t.Fatalf("second half took %d steps, want %d", taken, remaining)
	}
	if resumed.Model().Steps() != total {
		t.Fatalf("final step counter = %d, want %d", resumed.Model().Steps(), total)
	}

	// The finished model must actually recommend.
	recs, err := resumed.TopEvents(0, 5)
	if err != nil || len(recs) == 0 {
		t.Fatalf("resumed model cannot recommend: %v", err)
	}
}

func TestWithSnapshotSwapsEmbeddings(t *testing.T) {
	rec := tinyRecommender(t)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := rec.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadModelSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	next, err := rec.WithSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if next.Dataset() != rec.Dataset() || next.Split() != rec.Split() {
		t.Fatal("WithSnapshot must share the immutable pipeline state")
	}
	if next.Model() == rec.Model() {
		t.Fatal("WithSnapshot must build a fresh model")
	}
	if next.Model().Steps() != rec.Model().Steps() {
		t.Fatalf("step counter not carried: %d vs %d", next.Model().Steps(), rec.Model().Steps())
	}
	// Identical snapshots must produce identical rankings.
	a, err := rec.TopEvents(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := next.TopEvents(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d differs after snapshot swap: %+v vs %+v", i, a[i], b[i])
		}
	}
	// And the clone can build its own TA index without touching the
	// original.
	if err := next.PrepareJoint(5); err != nil {
		t.Fatal(err)
	}
	if _, err := next.TopEventPartners(3, 5); err != nil {
		t.Fatal(err)
	}
}

func TestWithSnapshotRejectsMismatchedShapes(t *testing.T) {
	rec := tinyRecommender(t)
	other, err := New(Config{City: CityTiny, Seed: 99, K: 12, TrainSteps: 1000, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := other.Model().Snapshot()
	if _, err := rec.WithSnapshot(snap); err == nil {
		t.Fatal("snapshot with mismatched K accepted")
	}
	if _, err := rec.WithSnapshot(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}
