package ebsn

// This file enforces the documentation contract mechanically: every
// audited package must carry a package comment, and every exported
// identifier in it — functions, methods, types, and const/var
// declarations — must have a doc comment. It covers the same ground as
// staticcheck's ST1000/ST1020/ST1021 in CI, duplicated here so
// `go test ./...` catches a regression even where staticcheck is not
// installed. Struct fields are deliberately out of scope (matching
// staticcheck): DTO field meaning lives in the type comment and json
// tags, and fields whose semantics are subtle carry comments by
// convention, not mechanical force.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// auditedPackages lists the directories (relative to the repo root)
// whose exported API must be fully documented. New packages should be
// added here as they stabilize.
var auditedPackages = []string{
	".",
	"serve",
	"internal/obs",
	"internal/isort",
	"internal/par",
	"internal/vecmath",
	"internal/ta",
	"internal/engine",
	"internal/workload",
}

func TestExportedIdentifiersAreDocumented(t *testing.T) {
	for _, dir := range auditedPackages {
		t.Run(dir, func(t *testing.T) {
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for name, pkg := range pkgs {
				if strings.HasSuffix(name, "_test") || name == "main" {
					continue
				}
				for _, miss := range auditPackage(fset, pkg) {
					t.Error(miss)
				}
			}
		})
	}
}

// auditPackage returns one message per documentation gap in pkg:
// a missing package comment, or an exported declaration (function,
// method, type, const/var group, struct field) without a doc comment.
func auditPackage(fset *token.FileSet, pkg *ast.Package) []string {
	var missing []string
	hasPkgDoc := false
	for fname, f := range pkg.Files {
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasPkgDoc = true
		}
		for _, decl := range f.Decls {
			missing = append(missing, auditDecl(fset, decl)...)
		}
	}
	if !hasPkgDoc {
		missing = append(missing, fmt.Sprintf("package %s has no package comment (ST1000)", pkg.Name))
	}
	return missing
}

func auditDecl(fset *token.FileSet, decl ast.Decl) []string {
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	badForm := func(pos token.Pos, kind, name string, doc *ast.CommentGroup) {
		if !docStartsWithName(doc, name) {
			p := fset.Position(pos)
			missing = append(missing, fmt.Sprintf("%s:%d: comment on exported %s %s should be of the form %q", p.Filename, p.Line, kind, name, name+" ..."))
		}
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && exportedRecv(d) {
			if d.Doc == nil {
				report(d.Pos(), "function", d.Name.Name)
			} else {
				badForm(d.Pos(), "function", d.Name.Name, d.Doc)
			}
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				switch {
				case s.Doc != nil:
					badForm(s.Pos(), "type", s.Name.Name, s.Doc)
				case d.Doc != nil && len(d.Specs) == 1:
					badForm(s.Pos(), "type", s.Name.Name, d.Doc)
				case d.Doc == nil:
					report(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				// A group comment on the const/var block covers its
				// members, matching godoc's rendering.
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						report(n.Pos(), "const/var", n.Name)
					}
				}
			}
		}
	}
	return missing
}

// docStartsWithName mirrors ST1020/ST1021's form rule: the comment's
// first word must be the identifier it documents (a leading article
// "A", "An" or "The" is tolerated, as staticcheck does).
func docStartsWithName(doc *ast.CommentGroup, name string) bool {
	words := strings.Fields(doc.Text())
	if len(words) == 0 {
		return false
	}
	if (words[0] == "A" || words[0] == "An" || words[0] == "The") && len(words) > 1 {
		return words[1] == name
	}
	return words[0] == name
}

// exportedRecv reports whether a method's receiver type is exported
// (methods on unexported types never surface in godoc).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}
