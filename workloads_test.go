package ebsn

import (
	"math"
	"sort"
	"testing"
	"time"

	"ebsn/internal/ebsnet"
)

// testWindow returns a constraint covering roughly the middle half of
// the test events' start times — a selective but non-empty window.
func testWindow(t *testing.T, rec *Recommender) Constraint {
	t.Helper()
	events := rec.Split().TestEvents
	starts := make([]time.Time, len(events))
	for i, x := range events {
		starts[i] = rec.Dataset().Events[x].Start
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].Before(starts[j]) })
	c := Constraint{From: starts[len(starts)/4], Until: starts[3*len(starts)/4]}
	if _, allowed := rec.CompileConstraint(c); allowed == 0 || allowed == len(events) {
		t.Fatalf("window is degenerate: %d of %d allowed", allowed, len(events))
	}
	return c
}

func TestTopEventsConstrained(t *testing.T) {
	rec := tinyRecommender(t)
	c := testWindow(t, rec)
	pred, allowed := rec.CompileConstraint(c)

	n := 7
	if n > allowed {
		n = allowed
	}
	got, err := rec.TopEventsConstrained(1, n, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}

	// Filter-then-rank oracle over the brute event scan.
	type se struct {
		x int32
		s float32
	}
	var oracle []se
	for i, x := range rec.Split().TestEvents {
		if !pred[i] {
			continue
		}
		oracle = append(oracle, se{x, rec.Model().ScoreUserEvent(1, x)})
	}
	sort.SliceStable(oracle, func(i, j int) bool { return oracle[i].s > oracle[j].s })
	for i, g := range got {
		if g.Event != oracle[i].x || g.Score != oracle[i].s {
			t.Fatalf("rank %d: got (%d, %v), oracle (%d, %v)", i, g.Event, g.Score, oracle[i].x, oracle[i].s)
		}
		if !c.Allow(rec.Dataset().Events[g.Event].Start, rec.Dataset().Venues[rec.Dataset().Events[g.Event].Venue]) {
			t.Fatalf("result event %d violates constraint", g.Event)
		}
	}

	// Zero constraint matches TopEvents exactly.
	plain, err := rec.TopEvents(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := rec.TopEventsConstrained(1, 7, Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(zero) {
		t.Fatalf("zero constraint returned %d, want %d", len(zero), len(plain))
	}
	for i := range plain {
		if plain[i] != zero[i] {
			t.Fatalf("zero constraint diverges at %d: %+v vs %+v", i, zero[i], plain[i])
		}
	}
}

func TestTopEventPartnersConstrained(t *testing.T) {
	rec := tinyRecommender(t)
	c := testWindow(t, rec)

	// Exhaustive reference: the unconstrained ranking of the full
	// candidate space (n clamps to the pair count), post-filtered. At
	// full depth, filter-then-rank and rank-then-filter agree.
	nAll := len(rec.Split().TestEvents) * rec.Dataset().NumUsers
	full, _, err := rec.TopEventPartnersStats(2, nAll)
	if err != nil {
		t.Fatal(err)
	}
	ds := rec.Dataset()
	var want []PairRecommendation
	for _, p := range full {
		e := ds.Events[p.Event]
		if c.Allow(e.Start, ds.Venues[e.Venue]) {
			want = append(want, p)
		}
	}

	n := 10
	if n > len(want) {
		n = len(want)
	}
	if n == 0 {
		t.Fatal("constraint filtered out every candidate pair")
	}
	got, stats, err := rec.TopEventPartnersConstrainedStats(2, n, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if stats.Candidates == 0 {
		t.Fatal("stats not populated")
	}

	if _, _, err := rec.TopEventPartnersConstrainedStats(-1, 5, c); err == nil {
		t.Error("negative user accepted")
	}
	if _, _, err := rec.TopEventPartnersConstrainedStats(2, 0, c); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestGroupTopEvents(t *testing.T) {
	rec := tinyRecommender(t)

	// A single-member group degenerates to TopEvents under both
	// strategies: the mean of one vector is the vector, and min over one
	// score is the score.
	plain, err := rec.TopEvents(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []GroupStrategy{GroupMean, GroupLeastMisery} {
		got, err := rec.GroupTopEvents([]int32{3}, 6, strat)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(plain) {
			t.Fatalf("%v: got %d results, want %d", strat, len(got), len(plain))
		}
		for i := range plain {
			if got[i].Event != plain[i].Event {
				t.Fatalf("%v: rank %d event %d, want %d", strat, i, got[i].Event, plain[i].Event)
			}
			if math.Abs(float64(got[i].Score-plain[i].Score)) > 1e-5 {
				t.Fatalf("%v: rank %d score %v, want %v", strat, i, got[i].Score, plain[i].Score)
			}
		}
	}

	// Multi-member: results are sorted test events, and least misery is
	// upper-bounded by every member's own score for the chosen event.
	members := []int32{0, 1, 2}
	for _, strat := range []GroupStrategy{GroupMean, GroupLeastMisery} {
		got, err := rec.GroupTopEvents(members, 5, strat)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 5 {
			t.Fatalf("%v: got %d results", strat, len(got))
		}
		for i, g := range got {
			if i > 0 && g.Score > got[i-1].Score {
				t.Fatalf("%v: not sorted at %d", strat, i)
			}
			if rec.Split().Class(g.Event) != ebsnet.Test {
				t.Fatalf("%v: non-test event %d", strat, g.Event)
			}
			if strat == GroupLeastMisery {
				for _, u := range members {
					if s := rec.Model().ScoreUserEvent(u, g.Event); s < g.Score {
						t.Fatalf("least-misery score %v exceeds member %d's own %v", g.Score, u, s)
					}
				}
			}
		}
	}

	if _, err := rec.GroupTopEvents(nil, 5, GroupMean); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := rec.GroupTopEvents([]int32{0, 999999}, 5, GroupMean); err == nil {
		t.Error("out-of-range member accepted")
	}
	if _, err := rec.GroupTopEvents([]int32{0}, 0, GroupMean); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestFeed(t *testing.T) {
	rec := tinyRecommender(t)
	n, m := 4, 3
	items, err := rec.Feed(2, n, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != n {
		t.Fatalf("got %d items, want %d", len(items), n)
	}
	top, err := rec.TopEvents(2, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.Event != top[i].Event || it.Score != top[i].Score {
			t.Fatalf("item %d is (%d, %v), want TopEvents' (%d, %v)", i, it.Event, it.Score, top[i].Event, top[i].Score)
		}
		if len(it.Partners) == 0 || len(it.Partners) > m {
			t.Fatalf("item %d has %d partners, want 1..%d", i, len(it.Partners), m)
		}
		for j, p := range it.Partners {
			if p.Partner == 2 {
				t.Fatal("querying user surfaced as their own companion")
			}
			if j > 0 && p.Score > it.Partners[j-1].Score {
				t.Fatalf("item %d partners not sorted at %d", i, j)
			}
			// The feed's joint score must agree with the explanation
			// surface's decomposition (different accumulation order, so
			// approximate equality).
			b, err := rec.Explain(2, p.Partner, it.Event)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(float64(p.Score-b.Total)) > 1e-3 {
				t.Fatalf("item %d partner %d score %v, Explain total %v", i, p.Partner, p.Score, b.Total)
			}
		}
	}

	if _, err := rec.Feed(2, n, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := rec.Feed(-1, n, m); err == nil {
		t.Error("negative user accepted")
	}
}
